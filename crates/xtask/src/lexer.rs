//! A minimal Rust source scanner for the lint pass.
//!
//! The lint rules are textual, so the only real parsing we need is the part
//! that makes textual rules sound: knowing which bytes are *code* and which
//! are comments or string/char literals. [`scan`] produces two byte-for-byte
//! shadows of the input — `masked` (code with comments/literal contents
//! blanked) and `comments` (comment text only) — so rules can search code
//! without tripping on `"panic!"` inside a string, and can read
//! `lint: allow(..)` escapes out of comments.
//!
//! On top of that, [`test_line_ranges`] brace-matches `#[cfg(test)]` items so
//! rules can skip test code, which is exempt from every rule.

/// Byte-for-byte shadows of one source file. Newlines are preserved in both,
/// so line numbers computed on either shadow match the original.
pub struct Scanned {
    /// Code only: comment bodies and string/char literal contents are
    /// replaced by spaces (delimiters are kept).
    pub masked: String,
    /// Comment text only: everything else is replaced by spaces.
    pub comments: String,
}

/// Scans `src`, classifying every byte as code or comment/literal.
///
/// Handles line comments, nested block comments, string and byte-string
/// literals with escapes, raw strings (`r"…"`, `r#"…"#`, `br"…"`), char
/// literals, and distinguishes lifetimes (`'a`) from char literals (`'a'`).
pub fn scan(src: &str) -> Scanned {
    let b = src.as_bytes();
    let n = b.len();
    let mut masked = Vec::with_capacity(n);
    let mut comments = Vec::with_capacity(n);
    // Emits one input byte into both shadows. `is_code`/`is_comment` pick
    // which shadow keeps the byte; newlines survive in both.
    let emit = |masked: &mut Vec<u8>, comments: &mut Vec<u8>, c: u8, keep: Keep| {
        if c == b'\n' {
            masked.push(b'\n');
            comments.push(b'\n');
            return;
        }
        match keep {
            Keep::Code => {
                masked.push(c);
                comments.push(b' ');
            }
            Keep::Comment => {
                masked.push(b' ');
                comments.push(c);
            }
            Keep::Neither => {
                masked.push(b' ');
                comments.push(b' ');
            }
        }
    };

    let mut i = 0usize;
    while i < n {
        let c = b[i];
        // Line comment (including doc comments).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                emit(&mut masked, &mut comments, b[i], Keep::Comment);
                i += 1;
            }
            continue;
        }
        // Block comment; Rust block comments nest.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    emit(&mut masked, &mut comments, b'/', Keep::Comment);
                    emit(&mut masked, &mut comments, b'*', Keep::Comment);
                    i += 2;
                    continue;
                }
                if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    emit(&mut masked, &mut comments, b'*', Keep::Comment);
                    emit(&mut masked, &mut comments, b'/', Keep::Comment);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                    continue;
                }
                emit(&mut masked, &mut comments, b[i], Keep::Comment);
                i += 1;
            }
            continue;
        }
        // Raw (byte) strings: r"…", r#"…"#, br"…" — but only when the `r`
        // is not the tail of an identifier.
        if (c == b'r' || c == b'b') && !prev_is_ident(b, i) {
            if let Some((open_len, hashes)) = raw_string_open(b, i) {
                for _ in 0..open_len {
                    emit(&mut masked, &mut comments, b[i], Keep::Code);
                    i += 1;
                }
                // Literal body runs until `"` followed by `hashes` hashes.
                while i < n {
                    if b[i] == b'"' && has_hashes(b, i + 1, hashes) {
                        emit(&mut masked, &mut comments, b'"', Keep::Code);
                        i += 1;
                        for _ in 0..hashes {
                            emit(&mut masked, &mut comments, b'#', Keep::Code);
                            i += 1;
                        }
                        break;
                    }
                    emit(&mut masked, &mut comments, b[i], Keep::Neither);
                    i += 1;
                }
                continue;
            }
        }
        // Plain (byte) string literal.
        if c == b'"' || (c == b'b' && !prev_is_ident(b, i) && i + 1 < n && b[i + 1] == b'"') {
            if c == b'b' {
                emit(&mut masked, &mut comments, b'b', Keep::Code);
                i += 1;
            }
            emit(&mut masked, &mut comments, b'"', Keep::Code);
            i += 1;
            while i < n {
                if b[i] == b'\\' && i + 1 < n {
                    emit(&mut masked, &mut comments, b[i], Keep::Neither);
                    emit(&mut masked, &mut comments, b[i + 1], Keep::Neither);
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    emit(&mut masked, &mut comments, b'"', Keep::Code);
                    i += 1;
                    break;
                }
                emit(&mut masked, &mut comments, b[i], Keep::Neither);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some(end) = char_literal_end(b, i) {
                emit(&mut masked, &mut comments, b'\'', Keep::Code);
                i += 1;
                while i < end {
                    emit(&mut masked, &mut comments, b[i], Keep::Neither);
                    i += 1;
                }
                emit(&mut masked, &mut comments, b'\'', Keep::Code);
                i += 1;
                continue;
            }
            // Lifetime (or stray quote): plain code.
        }
        emit(&mut masked, &mut comments, c, Keep::Code);
        i += 1;
    }

    Scanned {
        masked: String::from_utf8_lossy(&masked).into_owned(),
        comments: String::from_utf8_lossy(&comments).into_owned(),
    }
}

#[derive(Copy, Clone)]
enum Keep {
    Code,
    Comment,
    Neither,
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// If a raw string literal opens at `i`, returns `(opening_len, hash_count)`
/// where `opening_len` covers the prefix, hashes, and the opening quote.
fn raw_string_open(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

fn has_hashes(b: &[u8], from: usize, count: usize) -> bool {
    (0..count).all(|k| from + k < b.len() && b[from + k] == b'#')
}

/// If a char literal starts at `i` (which holds `'`), returns the index of
/// its closing quote; returns `None` for lifetimes.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    if i + 1 >= n {
        return None;
    }
    if b[i + 1] == b'\\' {
        // Escaped char literal: scan to the closing quote on this line.
        let mut j = i + 2;
        while j < n && b[j] != b'\n' {
            if b[j] == b'\\' {
                j += 2;
                continue;
            }
            if b[j] == b'\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    if b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_' {
        // `'x'` is a char literal; `'x…` without a closing quote right after
        // one identifier char is a lifetime.
        let mut j = i + 1;
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j == i + 2 && j < n && b[j] == b'\'' {
            return Some(j);
        }
        return None;
    }
    // Symbol or multi-byte char: scan to the closing quote on this line.
    let mut j = i + 1;
    while j < n && b[j] != b'\n' && j <= i + 8 {
        if b[j] == b'\'' {
            return Some(j);
        }
        j += 1;
    }
    None
}

/// Byte offsets where each line starts; index `k` is line `k + 1`.
pub fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte offset `pos`.
pub fn line_of(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos)
}

/// 1-based inclusive line ranges covered by `#[cfg(test)]` items, computed
/// on masked source so braces in strings/comments cannot confuse matching.
pub fn test_line_ranges(masked: &str) -> Vec<(usize, usize)> {
    let starts = line_starts(masked);
    let bytes = masked.as_bytes();
    let mut ranges = Vec::new();
    let mut from = 0usize;
    while let Some(off) = masked[from..].find("#[cfg(test)]") {
        let attr_at = from + off;
        from = attr_at + "#[cfg(test)]".len();
        // The attribute governs the next item: find its block, unless a `;`
        // ends the item first (e.g. `#[cfg(test)] use …;`).
        let mut j = from;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else { continue };
        if let Some(close) = match_brace(bytes, open) {
            ranges.push((line_of(&starts, attr_at), line_of(&starts, close)));
            from = close + 1;
        }
    }
    ranges
}

/// Index of the `}` matching the `{` at `open` (both in masked source).
pub fn match_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &c) in bytes.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// One token of masked source. Literal *contents* are already blanked by
/// [`scan`], so only delimiters of literals survive; the token stream is
/// therefore pure code structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Token text; for raw identifiers (`r#type`) the `r#` prefix is
    /// stripped, so `r#fn` and `fn` compare equal by text (by design: the
    /// parser treats them alike, exactly as name resolution does).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the parser distinguishes them by text).
    Ident,
    /// Punctuation. Multi-byte `::` is one token; everything else is one
    /// byte per token.
    Punct,
    /// Numeric literal (string/char literals are blanked by the mask and
    /// never reach the tokenizer as content).
    Num,
}

/// Tokenizes masked source (the `masked` shadow of [`scan`]).
pub fn tokens(masked: &str) -> Vec<Tok> {
    let b = masked.as_bytes();
    let n = b.len();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Raw identifier: `r#ident` (the mask leaves it intact — it is not
        // a raw string, which needs a `"` after the hashes).
        if c == b'r' && i + 2 < n && b[i + 1] == b'#' && is_ident_start(b[i + 2]) {
            let start = i + 2;
            i = start;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::Ident,
                text: masked[start..i].to_string(),
                line,
            });
            continue;
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::Ident,
                text: masked[start..i].to_string(),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            // Numeric literals (incl. floats, suffixes, hex): consume the
            // maximal run of number-ish bytes. `1.0f64`, `0xFF`, `1_000`.
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.') {
                i += 1;
            }
            out.push(Tok {
                kind: TokKind::Num,
                text: masked[start..i].to_string(),
                line,
            });
            continue;
        }
        if c == b':' && i + 1 < n && b[i + 1] == b':' {
            out.push(Tok {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        out.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        i += 1;
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_and_comments() {
        let src = "let s = \"panic!(\"; // panic!(here)\nlet t = 1;\n";
        let sc = scan(src);
        assert!(!sc.masked.contains("panic!"), "masked: {}", sc.masked);
        assert!(sc.comments.contains("panic!(here)"));
        assert!(sc.masked.contains("let t = 1;"));
        assert_eq!(sc.masked.len(), src.len());
    }

    #[test]
    fn masks_raw_strings_and_nested_block_comments() {
        let src = "let r = r#\"a \" .distance( b\"#; /* outer /* .call( */ still */ x";
        let sc = scan(src);
        assert!(!sc.masked.contains(".distance("));
        assert!(!sc.masked.contains(".call("));
        assert!(sc.masked.ends_with('x'));
        assert!(sc.comments.contains("still"));
    }

    #[test]
    fn distinguishes_lifetimes_from_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; let e = '<'; }";
        let sc = scan(src);
        // Lifetimes survive as code; char literal contents are blanked.
        assert!(sc.masked.contains("<'a>"));
        assert!(sc.masked.contains("&'a str"));
        assert!(!sc.masked.contains("'x'"), "masked: {}", sc.masked);
        // The `<` inside a char literal must not look like a comparison.
        assert!(!sc.masked.contains("'<'"));
        assert!(sc.masked.contains("let e = ' '"));
    }

    #[test]
    fn finds_cfg_test_ranges() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let ranges = test_line_ranges(&scan(src).masked);
        assert_eq!(ranges, vec![(3, 6)]);
    }

    #[test]
    fn cfg_test_on_use_item_is_not_a_block() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { let x = 1; }\n";
        let ranges = test_line_ranges(&scan(src).masked);
        assert!(ranges.is_empty(), "ranges: {ranges:?}");
    }

    #[test]
    fn line_bookkeeping() {
        let starts = line_starts("ab\ncd\nef");
        assert_eq!(line_of(&starts, 0), 1);
        assert_eq!(line_of(&starts, 3), 2);
        assert_eq!(line_of(&starts, 7), 3);
    }

    // --------------------------------------------------- edge-case corpus

    #[test]
    fn raw_strings_with_hashes_and_byte_strings() {
        // `r#"…"#` bodies may contain quotes and fake calls; `br"…"` too.
        let src = "let a = r##\"x \"# .call( y\"##; let b = br\"m.distance(\"; fn live() {}";
        let sc = scan(src);
        assert!(!sc.masked.contains(".call("));
        assert!(!sc.masked.contains(".distance("));
        assert!(sc.masked.contains("fn live() {}"));
        assert_eq!(sc.masked.len(), src.len());
    }

    #[test]
    fn deeply_nested_block_comments() {
        let src = "/* a /* b /* c */ b */ a */ fn live() { x.unwrap(); }";
        let sc = scan(src);
        assert!(sc.masked.contains("fn live() { x.unwrap(); }"));
        assert!(sc.comments.contains("a /* b /* c */ b */ a"));
        // Nothing before the final close is code.
        assert!(sc.masked[..src.find("fn").unwrap()].trim().is_empty());
    }

    #[test]
    fn char_and_byte_literals_are_blanked() {
        let src = r"let a = '{'; let b = b'}'; let c = '\u{7D}'; fn live() {}";
        let sc = scan(src);
        // Brace characters inside literals must not unbalance brace
        // matching: the only braces left in code are the fn body's.
        let opens = sc.masked.matches('{').count();
        let closes = sc.masked.matches('}').count();
        assert_eq!((opens, closes), (1, 1), "masked: {}", sc.masked);
        assert!(sc.masked.contains("fn live() {}"));
    }

    #[test]
    fn raw_identifiers_tokenize_without_prefix() {
        let toks = tokens("fn r#try(r#type: u32) { r#match(); }");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "try", "type", "u32", "match"]);
        // And `r` followed by `#` must not be eaten as a raw string opener.
        let sc = scan("let x = r#fn; let s = r#\"body\"#;");
        assert!(sc.masked.contains("r#fn"));
        assert!(!sc.masked.contains("body"));
    }

    #[test]
    fn tokens_carry_lines_and_fold_double_colons() {
        let toks = tokens("a::b(\n  1.5f64,\n)");
        assert_eq!(
            toks.iter()
                .map(|t| (t.text.as_str(), t.line))
                .collect::<Vec<_>>(),
            vec![
                ("a", 1),
                ("::", 1),
                ("b", 1),
                ("(", 1),
                ("1.5f64", 2),
                (",", 2),
                (")", 3)
            ]
        );
    }

    #[test]
    fn cfg_test_on_fn_covers_only_that_fn() {
        let src = "#[cfg(test)]\nfn helper() {\n    boom();\n}\nfn live() {}\n";
        let ranges = test_line_ranges(&scan(src).masked);
        assert_eq!(ranges, vec![(1, 4)]);
    }

    #[test]
    fn cfg_test_on_mod_covers_the_whole_block() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    mod inner {\n        fn t() {}\n    }\n}\n";
        let ranges = test_line_ranges(&scan(src).masked);
        assert_eq!(ranges, vec![(2, 7)]);
    }
}
