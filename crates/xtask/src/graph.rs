//! The workspace item graph: items and best-effort call edges.
//!
//! [`ItemGraph::build`] parses every source file (token-tree level — no
//! full AST, no rustc) into:
//!
//! * **Items** — every `fn`, attributed to its crate, module path, and
//!   containing `impl`/`trait` block, with visibility and `#[cfg(test)]`
//!   status. `impl Trait for Type` methods carry both the self type and the
//!   trait name, which is what the L9 choke-point analysis keys on.
//! * **Edges** — call sites inside `fn` bodies (`foo(…)`, `x.method(…)`,
//!   `Path::assoc(…)`), name-resolved against the item index.
//!
//! ## Name-resolution limits (the soundness posture)
//!
//! Resolution is by *name*, scoped by qualifier / module / crate — there is
//! no type inference. An unqualified or method call resolves to **every**
//! plausible item of that name, so the edge set **over-approximates** the
//! true call graph. That direction is deliberate: the graph rules (L9
//! oracle-reachability) forbid *paths*, so an over-approximated graph can
//! produce false positives (silenced by the audited allowlist) but cannot
//! miss a real leak through any workspace-visible call chain. What the
//! graph cannot see: calls through function pointers / closures passed as
//! values, macro-generated code, trait objects dispatched under a
//! different method name, and receiver calls whose name collides with a
//! std container method ([`STD_METHOD_NAMES`] — those would otherwise wire
//! every map `.insert(…)` to `MTree::insert`). None of those can smuggle
//! an oracle call today — `Oracle::call*` are inherent methods invoked by
//! name — and L2's lexical rule remains as a second, independent layer.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{scan, test_line_ranges, tokens, Tok, TokKind};

/// Item visibility, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// Plain `pub` — part of the crate's public API.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct Item {
    pub id: usize,
    /// Crate directory name (`algos`, `bounds`, …; the root facade is
    /// `prox`).
    pub krate: String,
    /// Module path within the crate (file-derived plus inline `mod`s).
    pub module: Vec<String>,
    /// Self type when the fn lives in an `impl` block, or the trait name
    /// when it is a trait declaration's (default) method.
    pub container: Option<String>,
    /// Trait name for `impl Trait for Type` methods and trait-decl methods.
    pub trait_of: Option<String>,
    pub name: String,
    pub vis: Vis,
    /// Whether the first parameter is a `self` receiver — only such items
    /// are candidates for `.name(…)` method-call resolution.
    pub has_self: bool,
    /// Under `#[cfg(test)]`, or in a `tests/` / `benches/` / `examples/`
    /// file.
    pub is_test: bool,
    pub file: String,
    pub line: usize,
}

impl Item {
    /// `crate::module::Container::name` — the display / allowlist key.
    pub fn path(&self) -> String {
        let mut s = self.krate.clone();
        for m in &self.module {
            s.push_str("::");
            s.push_str(m);
        }
        if let Some(c) = &self.container {
            s.push_str("::");
            s.push_str(c);
        }
        s.push_str("::");
        s.push_str(&self.name);
        s
    }
}

/// One resolved call edge (caller item → callee item).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    /// 1-based line of the call site.
    pub line: usize,
}

/// The whole-workspace item graph.
pub struct ItemGraph {
    pub items: Vec<Item>,
    pub edges: Vec<Edge>,
    /// Forward adjacency: `out[i]` = indices into `edges` leaving item `i`.
    pub out: Vec<Vec<usize>>,
    /// Reverse adjacency: `inc[i]` = indices into `edges` entering item `i`.
    pub inc: Vec<Vec<usize>>,
}

/// An unresolved call site recorded during parsing.
#[derive(Debug, Clone)]
struct CallRef {
    name: String,
    /// `q` in `q::name(…)`; `Self` is rewritten to the current container.
    qualifier: Option<String>,
    /// True for `.name(…)` receiver calls.
    method: bool,
    line: usize,
}

/// Parser context for one lexical scope.
#[derive(Clone)]
struct Ctx {
    module: Vec<String>,
    container: Option<String>,
    trait_of: Option<String>,
    in_test: bool,
}

struct Parser<'a> {
    toks: &'a [Tok],
    file: String,
    krate: String,
    items: Vec<Item>,
    calls: Vec<(usize, CallRef)>,
    /// 1-based inclusive line ranges of `#[cfg(test)]` items (belt and
    /// braces next to attribute tracking: covers attributed `use` items
    /// and keeps parity with the lexical rules).
    test_ranges: Vec<(usize, usize)>,
}

/// Method names shared with std containers/iterators/options: `.name(…)`
/// receiver calls with these names do NOT produce edges (the receiver is
/// almost always a std type). A *qualified* call (`MTree::insert`) still
/// resolves normally, so workspace methods with these names stay reachable
/// by name when the type is spelled out.
const STD_METHOD_NAMES: &[&str] = &[
    "insert",
    "get",
    "get_mut",
    "remove",
    "push",
    "pop",
    "contains",
    "contains_key",
    "entry",
    "extend",
    "append",
    "clear",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "drain",
    "retain",
    "next",
    "last",
    "first",
    "take",
    "replace",
    "sort",
    "sort_by",
    "split_off",
    "find",
    "map",
    "filter",
    "fold",
    "any",
    "all",
    "count",
    "min",
    "max",
    "abs",
    "clone",
    "get_or_insert",
];

const KEYWORDS_NEVER_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "ref", "mut", "let",
    "pub", "use", "crate", "super", "self", "where", "unsafe", "dyn", "impl", "fn", "else",
    "break", "continue", "await",
];

impl<'a> Parser<'a> {
    fn in_test_lines(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Index of the token matching `open` (`(`/`[`/`{`), or `end`.
    fn match_delim(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.toks[open].text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return open,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Punct {
                if t.text == o {
                    depth += 1;
                } else if t.text == c {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
            }
            i += 1;
        }
        end
    }

    /// Parses the token range `[i, end)` as item-position code.
    /// `current_fn` is the innermost enclosing fn (calls attribute there).
    fn walk(&mut self, mut i: usize, end: usize, ctx: &Ctx, current_fn: Option<usize>) {
        let mut pending_test = false;
        let mut pending_vis = Vis::Private;
        while i < end {
            let t = &self.toks[i];
            match (t.kind, t.text.as_str()) {
                // Attribute: skip, noting #[cfg(test)].
                (TokKind::Punct, "#") => {
                    if i + 1 < end && self.toks[i + 1].text == "[" {
                        let close = self.match_delim(i + 1, end);
                        let has = |s: &str| {
                            self.toks[i + 2..close]
                                .iter()
                                .any(|t| t.kind == TokKind::Ident && t.text == s)
                        };
                        if has("cfg") && has("test") {
                            pending_test = true;
                        }
                        i = close + 1;
                    } else {
                        i += 1;
                    }
                }
                (TokKind::Ident, "pub") => {
                    pending_vis = Vis::Pub;
                    if i + 1 < end && self.toks[i + 1].text == "(" {
                        pending_vis = Vis::Restricted;
                        i = self.match_delim(i + 1, end) + 1;
                    } else {
                        i += 1;
                    }
                }
                (TokKind::Ident, "mod") => {
                    let name = self.ident_at(i + 1, end);
                    let (body, after) = self.find_body(i + 1, end);
                    if let (Some(name), Some((open, close))) = (name, body) {
                        let mut sub = ctx.clone();
                        sub.module.push(name);
                        sub.in_test |= pending_test;
                        self.walk(open + 1, close, &sub, None);
                    }
                    i = after;
                    (pending_test, pending_vis) = (false, Vis::Private);
                }
                (TokKind::Ident, "trait") => {
                    let name = self.ident_at(i + 1, end);
                    let (body, after) = self.find_body(i + 1, end);
                    if let (Some(name), Some((open, close))) = (name, body) {
                        let mut sub = ctx.clone();
                        sub.container = Some(name.clone());
                        sub.trait_of = Some(name);
                        sub.in_test |= pending_test;
                        self.walk(open + 1, close, &sub, None);
                    }
                    i = after;
                    (pending_test, pending_vis) = (false, Vis::Private);
                }
                (TokKind::Ident, "impl") => {
                    let (body, after) = self.find_body(i + 1, end);
                    if let Some((open, close)) = body {
                        let (trait_of, self_ty) = self.impl_header(i + 1, open);
                        let mut sub = ctx.clone();
                        sub.container = self_ty;
                        sub.trait_of = trait_of;
                        sub.in_test |= pending_test;
                        self.walk(open + 1, close, &sub, None);
                    }
                    i = after;
                    (pending_test, pending_vis) = (false, Vis::Private);
                }
                (TokKind::Ident, "fn") => {
                    let name = self.ident_at(i + 1, end);
                    let (body, after) = self.find_body(i + 1, end);
                    if let Some(name) = name {
                        let line = self.toks[i].line;
                        let id = self.items.len();
                        let has_self = self.first_param_is_self(i + 2, end);
                        self.items.push(Item {
                            id,
                            krate: self.krate.clone(),
                            module: ctx.module.clone(),
                            container: ctx.container.clone(),
                            trait_of: ctx.trait_of.clone(),
                            name,
                            vis: pending_vis,
                            has_self,
                            is_test: ctx.in_test || pending_test || self.in_test_lines(line),
                            file: self.file.clone(),
                            line,
                        });
                        if let Some((open, close)) = body {
                            // Body only: the signature's `Fn(..)` bounds and
                            // `-> impl Trait` types must not read as calls.
                            self.walk(open + 1, close, ctx, Some(id));
                        }
                    }
                    i = after;
                    (pending_test, pending_vis) = (false, Vis::Private);
                }
                // Items whose bodies never contain calls we care about:
                // skip to their end so field/variant types stay inert.
                (TokKind::Ident, "struct" | "enum" | "union" | "static" | "const" | "type")
                    if current_fn.is_none() =>
                {
                    let (_, after) = self.find_body(i + 1, end);
                    i = after;
                    (pending_test, pending_vis) = (false, Vis::Private);
                }
                (TokKind::Ident, "use" | "extern") if current_fn.is_none() => {
                    while i < end && self.toks[i].text != ";" {
                        i += 1;
                    }
                    i += 1;
                    (pending_test, pending_vis) = (false, Vis::Private);
                }
                (TokKind::Ident, name) if current_fn.is_some() => {
                    // Call-site detection inside a fn body.
                    if i + 1 < end
                        && self.toks[i + 1].text == "("
                        && !KEYWORDS_NEVER_CALLS.contains(&name)
                    {
                        let prev = i.checked_sub(1).map(|p| self.toks[p].text.as_str());
                        let method = prev == Some(".");
                        let qualifier = if prev == Some("::") {
                            i.checked_sub(2)
                                .map(|q| &self.toks[q])
                                .filter(|t| t.kind == TokKind::Ident)
                                .map(|t| t.text.clone())
                                .map(|q| {
                                    if q == "Self" {
                                        ctx.container.clone().unwrap_or(q)
                                    } else {
                                        q
                                    }
                                })
                        } else {
                            None
                        };
                        // `fn name(` is a nested decl, handled above; a bare
                        // name preceded by `fn` cannot reach here.
                        self.calls.push((
                            current_fn.unwrap_or_default(),
                            CallRef {
                                name: name.to_string(),
                                qualifier,
                                method,
                                line: t.line,
                            },
                        ));
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    fn ident_at(&self, i: usize, end: usize) -> Option<String> {
        (i < end && self.toks[i].kind == TokKind::Ident).then(|| self.toks[i].text.clone())
    }

    /// From just past a fn's name: skips an optional generics list, then
    /// checks whether the first parameter (tokens up to the first `,` at
    /// paren depth 1) contains a `self` receiver.
    fn first_param_is_self(&self, mut i: usize, end: usize) -> bool {
        if i < end && self.toks[i].text == "<" {
            i = self.skip_angles(i, end);
        }
        if i >= end || self.toks[i].text != "(" {
            return false;
        }
        let close = self.match_delim(i, end);
        let mut j = i + 1;
        let mut depth = 0usize;
        while j < close {
            match self.toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "," if depth == 0 => return false,
                "self" if depth == 0 => return true,
                _ => {}
            }
            j += 1;
        }
        false
    }

    /// From an item keyword's successor, finds the item body `{…}` (token
    /// indices of `{` and `}`) or `None` if a `;` ends the item first.
    /// Returns `(body, index-after-item)`.
    fn find_body(&self, mut i: usize, end: usize) -> (Option<(usize, usize)>, usize) {
        while i < end {
            match self.toks[i].text.as_str() {
                "{" => {
                    let close = self.match_delim(i, end);
                    return (Some((i, close)), close + 1);
                }
                ";" => return (None, i + 1),
                // Parens and brackets in signatures may contain `;` (array
                // types) — skip them wholesale.
                "(" | "[" => i = self.match_delim(i, end) + 1,
                _ => i += 1,
            }
        }
        (None, end)
    }

    /// Extracts `(trait, self_type)` from the tokens of an `impl` header
    /// (`impl<G> Trait<A> for Type<G>` / `impl<G> Type<G>`), i.e. the
    /// range between the `impl` keyword and the body `{`.
    fn impl_header(&self, start: usize, body_open: usize) -> (Option<String>, Option<String>) {
        let mut i = start;
        // Skip the generics introducer `<…>` if present.
        if i < body_open && self.toks[i].text == "<" {
            i = self.skip_angles(i, body_open);
        }
        let (first, mut j) = self.path_head(i, body_open);
        // A `for` at this level splits trait from self type.
        while j < body_open && self.toks[j].text != "for" && self.toks[j].text != "where" {
            j += 1;
        }
        if j < body_open && self.toks[j].text == "for" {
            let (second, _) = self.path_head(j + 1, body_open);
            (first, second)
        } else {
            (None, first)
        }
    }

    /// Reads a type path at `i`, returning its *significant* ident (the
    /// last path segment before generic args — `prox_core::Metric` →
    /// `Metric`, `BoundResolver<'o, M, S>` → `BoundResolver`) and the
    /// index just past the path.
    fn path_head(&self, mut i: usize, end: usize) -> (Option<String>, usize) {
        let mut last = None;
        // Leading `&`/`dyn`/`mut` are irrelevant to naming.
        while i < end && matches!(self.toks[i].text.as_str(), "&" | "dyn" | "mut" | "'") {
            i += 1;
        }
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Ident && t.text != "for" && t.text != "where" {
                last = Some(t.text.clone());
                i += 1;
                if i < end && self.toks[i].text == "::" {
                    i += 1;
                    continue;
                }
                if i < end && self.toks[i].text == "<" {
                    i = self.skip_angles(i, end);
                }
                break;
            }
            break;
        }
        (last, i)
    }

    /// Skips a balanced `<…>` starting at `i` (which holds `<`). `->`
    /// cannot appear here unmerged because the tokenizer emits `-` and `>`
    /// separately — a `>` preceded by `-` is not counted as a close.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            match self.toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    if j > 0 && self.toks[j - 1].text == "-" {
                        // `->` arrow, not a closing angle.
                    } else {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        end
    }
}

/// Crate attribution for a workspace-relative path.
fn krate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("unknown").to_string()
    } else {
        "prox".to_string()
    }
}

/// File-derived module path: path components under `src/` minus the file
/// stem conventions (`lib.rs`/`main.rs`/`mod.rs` name their parent).
fn module_of(rel: &str) -> Vec<String> {
    let after_src = rel
        .split_once("/src/")
        .map(|(_, tail)| tail)
        .or_else(|| rel.split_once("src/").map(|(_, tail)| tail))
        .unwrap_or(rel);
    let mut parts: Vec<String> = after_src.split('/').map(str::to_string).collect();
    if let Some(last) = parts.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
        if last == "lib" || last == "main" || last == "mod" {
            parts.pop();
        }
    }
    parts
}

/// True for files that are test/bench/example targets in their entirety.
fn file_is_test(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

impl ItemGraph {
    /// Parses `files` (`(workspace-relative path, source)` pairs) and
    /// resolves call edges. Order-deterministic for a fixed input order.
    pub fn build(files: &[(String, String)]) -> ItemGraph {
        let mut items: Vec<Item> = Vec::new();
        let mut raw_calls: Vec<(usize, CallRef)> = Vec::new();
        for (rel, src) in files {
            if !rel.ends_with(".rs") {
                continue;
            }
            let scanned = scan(src);
            let toks = tokens(&scanned.masked);
            let mut p = Parser {
                toks: &toks,
                file: rel.clone(),
                krate: krate_of(rel),
                items: Vec::new(),
                calls: Vec::new(),
                test_ranges: test_line_ranges(&scanned.masked),
            };
            let ctx = Ctx {
                module: module_of(rel),
                container: None,
                trait_of: None,
                in_test: file_is_test(rel),
            };
            let end = toks.len();
            p.walk(0, end, &ctx, None);
            let base = items.len();
            for mut it in p.items {
                it.id += base;
                items.push(it);
            }
            for (fid, c) in p.calls {
                raw_calls.push((fid + base, c));
            }
        }

        // Name index over non-test items: live code cannot call cfg(test)
        // items, and excluding them keeps edges from tests pointed at the
        // real definitions.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for it in &items {
            if !it.is_test {
                by_name.entry(&it.name).or_default().push(it.id);
            }
        }

        let mut edge_set: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut edges: Vec<Edge> = Vec::new();
        for (from, call) in &raw_calls {
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue; // std / external / tuple ctor — no workspace item
            };
            let caller = &items[*from];
            let chosen: Vec<usize> = if let Some(q) = &call.qualifier {
                // A qualified call resolves only within the named scope. No
                // match means the qualifier is an external type (`HashMap`,
                // `Vec`, …) whose method merely shares a workspace name —
                // linking those would wire `HashMap::new()` to every
                // workspace `new`.
                cands
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let it = &items[id];
                        it.container.as_deref() == Some(q)
                            || it.trait_of.as_deref() == Some(q)
                            || it.module.last().map(String::as_str) == Some(q)
                            || it.krate == *q
                            || format!("prox_{}", it.krate) == *q
                    })
                    .collect()
            } else if call.method {
                // Receiver type is unknown, so `.name(…)` resolves to every
                // workspace method of that name — except names that std
                // containers/iterators also use, where the receiver is
                // almost always a std type and the fan-out would wire e.g.
                // every map `.insert(…)` to `MTree::insert`.
                if STD_METHOD_NAMES.contains(&call.name.as_str()) {
                    Vec::new()
                } else {
                    // Only items with a `self` receiver can be invoked with
                    // method syntax; an associated fn of the same name
                    // (`MTree::dist(oracle, …)`) is not a candidate.
                    cands
                        .iter()
                        .copied()
                        .filter(|&id| items[id].container.is_some() && items[id].has_self)
                        .collect()
                }
            } else {
                // Free call: nearest scope wins — same module+crate, then
                // same crate, then anything.
                let same_mod: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&id| {
                        items[id].krate == caller.krate && items[id].module == caller.module
                    })
                    .collect();
                if !same_mod.is_empty() {
                    same_mod
                } else {
                    let same_crate: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&id| items[id].krate == caller.krate)
                        .collect();
                    if !same_crate.is_empty() {
                        same_crate
                    } else {
                        cands.clone()
                    }
                }
            };
            for to in chosen {
                if to != *from && edge_set.insert((*from, to)) {
                    edges.push(Edge {
                        from: *from,
                        to,
                        line: call.line,
                    });
                }
            }
        }

        let mut out = vec![Vec::new(); items.len()];
        let mut inc = vec![Vec::new(); items.len()];
        for (k, e) in edges.iter().enumerate() {
            out[e.from].push(k);
            inc[e.to].push(k);
        }
        ItemGraph {
            items,
            edges,
            out,
            inc,
        }
    }

    /// All items matching `(container, name)`; `container = None` matches
    /// free functions only.
    pub fn find(&self, container: Option<&str>, name: &str) -> Vec<&Item> {
        self.items
            .iter()
            .filter(|it| it.name == name && it.container.as_deref() == container)
            .collect()
    }

    /// Plain reachability over non-test items: can `from` reach any of
    /// `sinks` through any call chain at all?
    pub fn reaches(&self, from: usize, sinks: &BTreeSet<usize>) -> bool {
        let mut seen = vec![false; self.items.len()];
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(v) = stack.pop() {
            if sinks.contains(&v) {
                return true;
            }
            for &e in &self.out[v] {
                let w = self.edges[e].to;
                if !seen[w] && !self.items[w].is_test {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    /// JSON dump of the graph (dependency-free, stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 * self.items.len());
        s.push_str("{\n  \"items\": [\n");
        for (k, it) in self.items.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"id\": {}", it.id));
            s.push_str(&format!(", \"crate\": {}", json_str(&it.krate)));
            s.push_str(&format!(
                ", \"module\": {}",
                json_str(&it.module.join("::"))
            ));
            match &it.container {
                Some(c) => s.push_str(&format!(", \"container\": {}", json_str(c))),
                None => s.push_str(", \"container\": null"),
            }
            match &it.trait_of {
                Some(t) => s.push_str(&format!(", \"trait\": {}", json_str(t))),
                None => s.push_str(", \"trait\": null"),
            }
            s.push_str(&format!(", \"name\": {}", json_str(&it.name)));
            let vis = match it.vis {
                Vis::Pub => "pub",
                Vis::Restricted => "pub(restricted)",
                Vis::Private => "private",
            };
            s.push_str(&format!(", \"vis\": {}", json_str(vis)));
            s.push_str(&format!(", \"test\": {}", it.is_test));
            s.push_str(&format!(", \"file\": {}", json_str(&it.file)));
            s.push_str(&format!(", \"line\": {}", it.line));
            s.push('}');
            if k + 1 < self.items.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ],\n  \"edges\": [\n");
        for (k, e) in self.edges.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"from\": {}, \"to\": {}, \"line\": {}}}",
                e.from, e.to, e.line
            ));
            if k + 1 < self.edges.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// GraphViz DOT dump, clustered by crate. `DistanceResolver` methods
    /// (the L9 choke points) and `Oracle::call*` (the sinks) are colored.
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        s.push_str("digraph item_graph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n");
        let mut by_crate: BTreeMap<&str, Vec<&Item>> = BTreeMap::new();
        for it in &self.items {
            if it.is_test {
                continue;
            }
            by_crate.entry(&it.krate).or_default().push(it);
        }
        for (krate, its) in &by_crate {
            s.push_str(&format!(
                "  subgraph \"cluster_{krate}\" {{\n    label=\"{krate}\";\n"
            ));
            for it in its {
                let label = match &it.container {
                    Some(c) => format!("{}::{}", c, it.name),
                    None => it.name.clone(),
                };
                let color = if it.container.as_deref() == Some("Oracle")
                    && it.name.starts_with("call")
                    || it.name.starts_with("try_call")
                {
                    ", style=filled, fillcolor=salmon"
                } else if it.trait_of.as_deref() == Some("DistanceResolver") {
                    ", style=filled, fillcolor=lightblue"
                } else {
                    ""
                };
                s.push_str(&format!(
                    "    n{} [label=\"{}\"{color}];\n",
                    it.id,
                    label.replace('"', "'")
                ));
            }
            s.push_str("  }\n");
        }
        for e in &self.edges {
            if self.items[e.from].is_test || self.items[e.to].is_test {
                continue;
            }
            s.push_str(&format!("  n{} -> n{};\n", e.from, e.to));
        }
        s.push_str("}\n");
        s
    }
}

/// Minimal JSON string escaping (paths and identifiers only).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)]) -> ItemGraph {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        ItemGraph::build(&owned)
    }

    #[test]
    fn extracts_items_with_attribution() {
        let g = graph_of(&[(
            "crates/algos/src/knng.rs",
            "pub fn knn_graph() {}\n\
             fn helper() {}\n\
             pub(crate) fn scoped() {}\n\
             mod inner { pub fn nested() {} }\n\
             #[cfg(test)]\nmod tests { fn t() {} }\n",
        )]);
        let knn = &g.find(None, "knn_graph")[0];
        assert_eq!(knn.krate, "algos");
        assert_eq!(knn.module, vec!["knng".to_string()]);
        assert_eq!(knn.vis, Vis::Pub);
        assert!(!knn.is_test);
        assert_eq!(knn.path(), "algos::knng::knn_graph");
        assert_eq!(g.find(None, "helper")[0].vis, Vis::Private);
        assert_eq!(g.find(None, "scoped")[0].vis, Vis::Restricted);
        assert_eq!(
            g.find(None, "nested")[0].module,
            vec!["knng".to_string(), "inner".to_string()]
        );
        assert!(g.find(None, "t")[0].is_test);
    }

    #[test]
    fn attributes_impl_and_trait_methods() {
        let g = graph_of(&[(
            "crates/bounds/src/resolver.rs",
            "pub trait DistanceResolver {\n\
                 fn resolve(&mut self) -> f64;\n\
                 fn less(&mut self) -> bool { self.resolve() < 1.0 }\n\
             }\n\
             pub struct BoundResolver<'o, M, S> { x: u32 }\n\
             impl<'o, M: Metric, S: Scheme> BoundResolver<'o, M, S> {\n\
                 pub fn new() -> Self { Self { x: 0 } }\n\
             }\n\
             impl<'o, M: Metric, S: Scheme> DistanceResolver for BoundResolver<'o, M, S> {\n\
                 fn resolve(&mut self) -> f64 { 0.0 }\n\
             }\n",
        )]);
        let less = &g.find(Some("DistanceResolver"), "less")[0];
        assert_eq!(less.trait_of.as_deref(), Some("DistanceResolver"));
        let new = &g.find(Some("BoundResolver"), "new")[0];
        assert_eq!(new.trait_of, None);
        let imp = g.find(Some("BoundResolver"), "resolve");
        assert_eq!(imp.len(), 1);
        assert_eq!(imp[0].trait_of.as_deref(), Some("DistanceResolver"));
    }

    #[test]
    fn resolves_free_method_and_path_calls() {
        let g = graph_of(&[
            (
                "crates/algos/src/prim.rs",
                "pub fn prim() { helper(); r.resolve(x); Oracle::call_pair(o, p); }\n\
                 fn helper() {}\n",
            ),
            (
                "crates/core/src/oracle.rs",
                "pub struct Oracle;\nimpl Oracle {\n    pub fn call_pair(&self) {}\n}\n",
            ),
            (
                "crates/bounds/src/resolver.rs",
                "pub trait DistanceResolver { fn resolve(&mut self) {} }\n",
            ),
        ]);
        let prim = g.find(None, "prim")[0].id;
        let targets: BTreeSet<String> = g.out[prim]
            .iter()
            .map(|&e| g.items[g.edges[e].to].path())
            .collect();
        assert!(targets.contains("algos::prim::helper"), "{targets:?}");
        assert!(
            targets.contains("bounds::resolver::DistanceResolver::resolve"),
            "{targets:?}"
        );
        assert!(
            targets.contains("core::oracle::Oracle::call_pair"),
            "{targets:?}"
        );
    }

    #[test]
    fn signature_types_and_macros_are_not_calls() {
        let g = graph_of(&[(
            "crates/core/src/x.rs",
            "pub fn apply<F: Fn(u32) -> u32>(f: F) -> u32 {\n\
                 invariant!(true, \"ok\");\n\
                 vec![1]\n        .len() as u32\n\
             }\n\
             pub fn target(x: u32) -> u32 { x }\n",
        )]);
        let apply = g.find(None, "apply")[0].id;
        assert!(
            g.out[apply].is_empty(),
            "Fn-bounds, macros and std calls resolve to nothing: {:?}",
            g.out[apply]
                .iter()
                .map(|&e| g.items[g.edges[e].to].path())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn nested_fn_owns_its_calls() {
        let g = graph_of(&[(
            "crates/bounds/src/tlaesa.rs",
            "pub fn build() {\n\
                 fn note() { record(); }\n\
                 note();\n\
             }\n\
             pub fn record() {}\n",
        )]);
        let build = g.find(None, "build")[0].id;
        let note = g.find(None, "note")[0].id;
        let record = g.find(None, "record")[0].id;
        let edge = |a: usize, b: usize| g.edges.iter().any(|e| e.from == a && e.to == b);
        assert!(edge(build, note));
        assert!(edge(note, record));
        assert!(!edge(build, record), "outer fn does not own inner's calls");
    }

    #[test]
    fn reaches_walks_chains_and_skips_test_items() {
        let g = graph_of(&[(
            "crates/algos/src/a.rs",
            "pub fn top() { mid(); }\nfn mid() { bottom(); }\nfn bottom() {}\n\
             #[cfg(test)]\nmod tests { fn t() { bottom(); } }\n",
        )]);
        let top = g.find(None, "top")[0].id;
        let bottom = g.find(None, "bottom")[0].id;
        let sinks: BTreeSet<usize> = [bottom].into();
        assert!(g.reaches(top, &sinks));
        assert!(!g.reaches(bottom, &[top].into()));
    }

    #[test]
    fn json_and_dot_render() {
        let g = graph_of(&[(
            "crates/core/src/a.rs",
            "pub fn f() { g(); }\npub fn g() {}\n",
        )]);
        let js = g.to_json();
        assert!(js.contains("\"items\""));
        assert!(js.contains("\"name\": \"f\""));
        assert!(js.contains("\"edges\""));
        let dot = g.to_dot();
        assert!(dot.contains("digraph item_graph"));
        assert!(dot.contains("cluster_core"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn self_qualifier_resolves_to_container() {
        let g = graph_of(&[(
            "crates/core/src/oracle.rs",
            "pub struct Oracle;\nimpl Oracle {\n\
                 pub fn call(&self) { Self::slow(self); }\n\
                 fn slow(&self) {}\n\
             }\n",
        )]);
        let call = g.find(Some("Oracle"), "call")[0].id;
        let slow = g.find(Some("Oracle"), "slow")[0].id;
        assert!(g.edges.iter().any(|e| e.from == call && e.to == slow));
    }
}
