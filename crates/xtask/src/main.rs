//! `cargo xtask` — repo-specific checks that `rustc`/`clippy` cannot express.
//!
//! ```text
//! cargo xtask lint                      # enforce L1–L14 + stale-escape gate
//! cargo xtask lint --allow-unused-allows  # grace mode: stale escapes warn only
//! cargo xtask analyze                   # choke-point report on stdout
//! cargo xtask analyze --json [PATH] --dot [PATH]   # plus graph dumps
//! cargo xtask bench-gate [PATH]         # splub/tri latency-ratio gate on the
//!                                       # bench JSON (default BENCH_schemes.json)
//! ```
//!
//! The rules and their rationale live in `docs/INVARIANTS.md`; the
//! implementations (with fixture tests) are in [`xtask::rules`], the item
//! graph in [`xtask::graph`].

use std::process::ExitCode;
use std::time::Instant;

use xtask::{analyze, bench_gate, load_workspace_sources, rules, workspace_root};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(args.iter().any(|a| a == "--allow-unused-allows")),
        Some("analyze") => run_analyze(&args[1..]),
        Some("bench-gate") => run_bench_gate(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask lint [--allow-unused-allows]");
            eprintln!("       cargo xtask analyze [--json [PATH]] [--dot [PATH]]");
            eprintln!("       cargo xtask bench-gate [PATH]");
            ExitCode::from(2)
        }
    }
}

fn run_lint(allow_unused_allows: bool) -> ExitCode {
    let t0 = Instant::now();
    let files = load_workspace_sources(&workspace_root());
    let lint = rules::lint_workspace(&files);

    for v in &lint.violations {
        println!("{}\n", v.render());
    }
    let mut failures = lint.violations.len();
    for v in &lint.stale_escapes {
        if allow_unused_allows {
            println!(
                "warning[stale-allow]: {}\n  --> {}:{}\n",
                v.msg, v.file, v.line
            );
        } else {
            println!("{}\n", v.render());
            failures += 1;
        }
    }

    let ms = t0.elapsed().as_millis();
    if failures == 0 {
        println!(
            "xtask lint: {} files linted, {} items / {} edges in the graph, \
             no violations ({ms} ms)",
            lint.files_linted, lint.items, lint.edges
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {failures} finding(s) across {} files linted ({ms} ms)",
            lint.files_linted
        );
        ExitCode::FAILURE
    }
}

fn run_bench_gate(args: &[String]) -> ExitCode {
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_schemes.json".to_string());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match bench_gate::parse_rows(&json).and_then(|rows| bench_gate::check(&rows)) {
        Ok(verdict) => {
            println!("xtask bench-gate: OK — {verdict}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error[bench-gate]: {e} (in {path})");
            ExitCode::FAILURE
        }
    }
}

fn run_analyze(args: &[String]) -> ExitCode {
    // `--json` / `--dot` take an optional path; bare flags use defaults.
    let path_for = |flag: &str, default: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        match args.get(i + 1) {
            Some(next) if !next.starts_with("--") => Some(next.clone()),
            _ => Some(default.to_string()),
        }
    };
    let json = path_for("--json", "item-graph.json");
    let dot = path_for("--dot", "item-graph.dot");

    let t0 = Instant::now();
    let files = load_workspace_sources(&workspace_root());
    let analysis = analyze::analyze(&files);
    print!("{}", analysis.choke_report());

    for (path, payload) in [
        (&json, analysis.graph.to_json()),
        (&dot, analysis.graph.to_dot()),
    ] {
        let Some(path) = path else { continue };
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    println!("xtask analyze: done in {} ms", t0.elapsed().as_millis());
    let mut ok = true;
    if !analysis.exposure.stale_allow.is_empty() {
        eprintln!("error: stale L9_ALLOWLIST entries (see report)");
        ok = false;
    }
    if !analysis.l13_stale.is_empty() {
        eprintln!("error: stale L13_ALLOWLIST entries (see report)");
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
