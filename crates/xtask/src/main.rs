//! `cargo xtask` — repo-specific checks that `rustc`/`clippy` cannot express.
//!
//! ```text
//! cargo xtask lint        # enforce L1–L8 across the workspace
//! ```
//!
//! The rules and their rationale live in `docs/INVARIANTS.md`; the
//! implementations (with fixture tests) are in [`rules`].

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lexer;
mod rules;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    collect_rs_files(&root.join("src"), &mut files);
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("warning: unreadable file {}", path.display());
            continue;
        };
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned += 1;
        violations.extend(rules::lint_source(&rel, &text));
    }

    // L8 is cross-file: the trace-event emitter and the report summarizer
    // must agree on the event-name vocabulary.
    let event_path = root.join("crates/obs/src/event.rs");
    let report_path = root.join("crates/obs/src/report.rs");
    match (
        std::fs::read_to_string(&event_path),
        std::fs::read_to_string(&report_path),
    ) {
        (Ok(event_src), Ok(report_src)) => {
            violations.extend(rules::lint_event_coverage(&event_src, &report_src));
        }
        _ => eprintln!("warning: obs event/report sources unreadable; L8 skipped"),
    }

    for v in &violations {
        println!("{}\n", v.render());
    }
    if violations.is_empty() {
        println!("xtask lint: {scanned} files scanned, no violations");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) in {} file(s) ({} files scanned)",
            violations.len(),
            {
                let mut fs: Vec<&str> = violations.iter().map(|v| v.file.as_str()).collect();
                fs.dedup();
                fs.len()
            },
            scanned
        );
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
