//! `cargo xtask analyze` — the item-graph dumps and the choke-point report.
//!
//! Builds the whole-workspace [`ItemGraph`], then renders:
//!
//! * a **choke-point report** (always printed): where the oracle sinks
//!   live, which `DistanceResolver` methods guard them, what the audited
//!   allowlist covers, and — for every public `crates/algos`/`crates/bounds`
//!   API — whether it reaches the oracle and whether that path is guarded;
//! * optional machine-readable dumps: `--json` (items + edges) and `--dot`
//!   (GraphViz, clustered by crate, sinks/chokes highlighted).

use crate::graph::{ItemGraph, Vis};
use crate::rules::{self, OracleExposure};

/// Everything `cargo xtask analyze` derives from one workspace snapshot.
pub struct Analysis {
    pub graph: ItemGraph,
    pub exposure: OracleExposure,
    /// `L13_ALLOWLIST` entries matching no workspace item — stale, and a
    /// gate failure exactly like the L9 `stale_allow` set.
    pub l13_stale: Vec<String>,
}

/// Builds the graph and the L9 exposure analysis for a workspace snapshot.
pub fn analyze(files: &[(String, String)]) -> Analysis {
    analyze_with(files, rules::L9_ALLOWLIST, rules::L13_ALLOWLIST)
}

/// [`analyze`] with explicit allowlists (tests use fixtures).
pub fn analyze_with(
    files: &[(String, String)],
    l9_allowlist: &[&str],
    l13_allowlist: &[&str],
) -> Analysis {
    let graph = ItemGraph::build(files);
    let exposure = rules::oracle_exposure(&graph, l9_allowlist);
    let l13_stale = l13_allowlist
        .iter()
        .filter(|e| !graph.items.iter().any(|it| it.path() == **e))
        .map(|e| e.to_string())
        .collect();
    Analysis {
        graph,
        exposure,
        l13_stale,
    }
}

impl Analysis {
    /// The human-readable choke-point report.
    pub fn choke_report(&self) -> String {
        let g = &self.graph;
        let e = &self.exposure;
        let mut s = String::new();
        s.push_str(&format!(
            "item graph: {} items, {} edges\n\n",
            g.items.len(),
            g.edges.len()
        ));

        s.push_str("oracle sinks (the expensive calls):\n");
        for &v in &e.sinks {
            let it = &g.items[v];
            s.push_str(&format!("  {} ({}:{})\n", it.path(), it.file, it.line));
        }

        s.push_str(&format!(
            "\nchoke points ({} DistanceResolver methods):\n",
            e.chokes.len()
        ));
        for &v in &e.chokes {
            let it = &g.items[v];
            s.push_str(&format!("  {} ({}:{})\n", it.path(), it.file, it.line));
        }

        s.push_str("\naudited allowlist (L9_ALLOWLIST):\n");
        for &v in &e.allowed {
            let it = &g.items[v];
            s.push_str(&format!("  {} ({}:{})\n", it.path(), it.file, it.line));
        }
        for stale in &e.stale_allow {
            s.push_str(&format!("  {stale}  [STALE: matches no item]\n"));
        }
        for stale in &self.l13_stale {
            s.push_str(&format!(
                "  {stale}  [STALE L13_ALLOWLIST entry: matches no item]\n"
            ));
        }

        // Public algos/bounds APIs, classified by how they touch the oracle.
        let sinks: std::collections::BTreeSet<usize> = e.sinks.iter().copied().collect();
        let exposed: std::collections::BTreeSet<usize> =
            e.exposed.iter().map(|(v, _)| *v).collect();
        let mut guarded = 0usize;
        let mut untouched = 0usize;
        let mut leaks: Vec<&str> = Vec::new();
        let mut leak_lines = String::new();
        for it in &g.items {
            if it.is_test || it.vis != Vis::Pub || !matches!(it.krate.as_str(), "algos" | "bounds")
            {
                continue;
            }
            if exposed.contains(&it.id) {
                leaks.push(&it.name);
                let chain = e
                    .exposed
                    .iter()
                    .find(|(v, _)| *v == it.id)
                    .map(|(_, c)| c.as_str())
                    .unwrap_or("");
                leak_lines.push_str(&format!("  EXPOSED {} via {}\n", it.path(), chain));
            } else if g.reaches(it.id, &sinks) {
                guarded += 1;
            } else {
                untouched += 1;
            }
        }
        s.push_str(&format!(
            "\npublic algos/bounds APIs: {} reach the oracle only through a \
             resolver, {} never touch it, {} EXPOSED\n",
            guarded,
            untouched,
            leaks.len()
        ));
        s.push_str(&leak_lines);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_guarded_and_exposed_apis() {
        let files: Vec<(String, String)> = [
            (
                "crates/core/src/oracle.rs",
                "pub struct Oracle;\nimpl Oracle {\n    pub fn call(&self) { self.try_call() }\n    pub fn try_call(&self) {}\n}\n",
            ),
            (
                "crates/bounds/src/resolver.rs",
                "pub trait DistanceResolver {\n    fn less(&mut self, o: &Oracle) { o.try_call() }\n}\n",
            ),
            (
                "crates/algos/src/a.rs",
                "pub fn guarded(r: &mut dyn DistanceResolver, o: &Oracle) { r.less(o); }\npub fn pure() {}\npub fn leaky(o: &Oracle) { o.call(); }\n",
            ),
        ]
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
        let a = analyze(&files);
        let report = a.choke_report();
        assert!(report.contains("oracle sinks"));
        assert!(report.contains("core::oracle::Oracle::call"));
        assert!(
            report.contains("1 reach the oracle only through a resolver"),
            "{report}"
        );
        assert!(report.contains("1 never touch it"), "{report}");
        assert!(report.contains("1 EXPOSED"), "{report}");
        assert!(report.contains("EXPOSED algos::a::leaky via algos::a::leaky"));
    }

    #[test]
    fn stale_l13_entries_are_tracked_and_rendered() {
        let files: Vec<(String, String)> = [(
            "crates/bounds/src/splub.rs".to_string(),
            "pub fn ensure_tree() {}\n".to_string(),
        )]
        .into_iter()
        .collect();
        let a = analyze_with(&files, &[], &["bounds::splub::ensure_tree"]);
        assert!(a.l13_stale.is_empty());
        let a = analyze_with(&files, &[], &["bounds::gone::nope"]);
        assert_eq!(a.l13_stale, vec!["bounds::gone::nope".to_string()]);
        assert!(
            a.choke_report()
                .contains("bounds::gone::nope  [STALE L13_ALLOWLIST entry"),
            "{}",
            a.choke_report()
        );
    }
}
