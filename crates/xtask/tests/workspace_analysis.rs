//! Pins the L9 acceptance property against the *real* workspace: the
//! expensive `Oracle::call` / `call_pair` sinks are reachable from the
//! public `crates/algos` APIs — so the property is not vacuous — but only
//! through `DistanceResolver` choke nodes (or the audited allowlist), and
//! the full lint converges with zero violations and zero stale escapes.

use std::collections::BTreeSet;

use xtask::graph::{ItemGraph, Vis};
use xtask::rules::{self, L9_ALLOWLIST};
use xtask::{load_workspace_sources, workspace_root};

fn real_graph() -> (Vec<(String, String)>, ItemGraph) {
    let files = load_workspace_sources(&workspace_root());
    assert!(
        files.len() >= 50,
        "workspace snapshot looks truncated: {} files",
        files.len()
    );
    let g = ItemGraph::build(&files);
    (files, g)
}

/// The raw graph (no choke filtering) connects the public algorithm entry
/// points to the oracle sinks: the L9 result below is about *how* they
/// reach the oracle, not an artifact of a disconnected graph.
#[test]
fn algos_public_apis_reach_the_oracle_in_the_raw_graph() {
    let (_, g) = real_graph();
    let sinks: BTreeSet<usize> = g
        .items
        .iter()
        .filter(|it| {
            it.krate == "core"
                && it.container.as_deref() == Some("Oracle")
                && matches!(it.name.as_str(), "call" | "call_pair")
        })
        .map(|it| it.id)
        .collect();
    assert!(!sinks.is_empty(), "Oracle::call / call_pair not found");

    for api in ["prim_mst", "kruskal_mst"] {
        let item = g
            .items
            .iter()
            .find(|it| it.krate == "algos" && it.name == api && !it.is_test)
            .unwrap_or_else(|| panic!("{api} missing from the item graph"));
        assert_eq!(item.vis, Vis::Pub, "{api} should be public");
        assert!(
            g.reaches(item.id, &sinks),
            "{api} no longer reaches the oracle — resolution regressed?"
        );
    }
}

/// The L9 property itself: no public algos/bounds item can reach a sink
/// around the `DistanceResolver` choke points, and every allowlist entry
/// names a live item.
#[test]
fn oracle_is_reachable_only_through_resolver_chokes() {
    let (_, g) = real_graph();
    let exposure = rules::oracle_exposure(&g, L9_ALLOWLIST);
    assert_eq!(exposure.sinks.len(), 5, "expected the 5 Oracle sink fns");
    assert!(
        exposure.chokes.len() >= 10,
        "suspiciously few DistanceResolver methods: {}",
        exposure.chokes.len()
    );
    assert_eq!(
        exposure.stale_allow,
        Vec::<String>::new(),
        "stale L9 allowlist entries"
    );
    let leaks: Vec<&String> = exposure
        .exposed
        .iter()
        .filter(|(id, _)| {
            let it = &g.items[*id];
            it.vis == Vis::Pub && matches!(it.krate.as_str(), "algos" | "bounds")
        })
        .map(|(_, chain)| chain)
        .collect();
    assert!(leaks.is_empty(), "exposed public APIs: {leaks:#?}");
}

/// The workspace lint (lexical L1–L7, L8 coverage, graph L9–L12, escape
/// accounting) is clean end to end.
#[test]
fn workspace_lint_is_clean() {
    let (files, _) = real_graph();
    let lint = rules::lint_workspace(&files);
    let rendered: Vec<String> = lint.violations.iter().map(|v| v.render()).collect();
    assert!(rendered.is_empty(), "lint violations: {rendered:#?}");
    let stale: Vec<String> = lint.stale_escapes.iter().map(|v| v.render()).collect();
    assert!(stale.is_empty(), "stale lint escapes: {stale:#?}");
    assert!(lint.files_linted >= 50, "too few files linted");
    assert!(lint.items >= 500, "item graph too small: {}", lint.items);
    assert!(lint.edges >= 1000, "edge set too small: {}", lint.edges);
}

/// The JSON dump round-trips the load-bearing facts a consumer would key
/// on: the sink and choke nodes are present by name.
#[test]
fn json_dump_names_sinks_and_chokes() {
    let (_, g) = real_graph();
    let json = g.to_json();
    assert!(json.contains("\"container\": \"Oracle\""));
    assert!(json.contains("\"trait\": \"DistanceResolver\""));
    assert!(json.contains("\"name\": \"prim_mst\""));
    assert!(json.starts_with('{') && json.ends_with("}\n"));
}
