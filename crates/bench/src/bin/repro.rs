//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 # enumerate experiments
//! repro table2               # one experiment (small scale by default)
//! repro fig3a fig3b          # several
//! repro all --scale full     # everything at paper-shaped sizes
//! ```

use std::process::ExitCode;

use prox_bench::experiments;
use prox_bench::Scale;

fn usage() -> ExitCode {
    eprintln!("usage: repro <experiment-id>... [--scale small|full] [--threads N]");
    eprintln!("       repro all [--scale small|full] [--threads N]");
    eprintln!("       repro list");
    eprintln!("       (--threads 0 = one per core; outputs are identical at any N)");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut scale = Scale::Small;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().as_deref() {
                Some("small") => scale = Scale::Small,
                Some("full") => scale = Scale::Full,
                other => {
                    eprintln!("unknown scale {other:?}");
                    return usage();
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(t) => prox_exec::set_global_threads(t),
                None => {
                    eprintln!("--threads needs a number (0 = one per core)");
                    return usage();
                }
            },
            "list" => {
                for e in experiments::all() {
                    println!("{:<8} {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            _ => ids.push(arg),
        }
    }

    if ids.iter().any(|id| id == "all") {
        ids = experiments::all()
            .iter()
            .map(|e| e.id.to_string())
            .collect();
    }
    if ids.is_empty() {
        return usage();
    }

    for id in &ids {
        match experiments::by_id(id) {
            Some(e) => {
                eprintln!("[repro] running {id} ({:?} scale)…", scale);
                let t = std::time::Instant::now();
                (e.run)(scale);
                eprintln!("[repro] {id} done in {:.1?}", t.elapsed());
            }
            None => {
                eprintln!("unknown experiment {id:?}; try `repro list`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
