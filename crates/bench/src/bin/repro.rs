//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 # enumerate experiments
//! repro table2               # one experiment (small scale by default)
//! repro fig3a fig3b          # several
//! repro all --scale full     # everything at paper-shaped sizes
//! ```

use std::process::ExitCode;
use std::time::Duration;

use prox_bench::experiments;
use prox_bench::runner::set_trace_dir;
use prox_bench::{set_oracle_config, OracleConfig, Scale};
use prox_core::{CallBudget, FaultInjector, RetryPolicy};

fn usage() -> ExitCode {
    eprintln!("usage: repro <experiment-id>... [--scale small|full] [--threads N]");
    eprintln!("       repro all [--scale small|full] [--threads N]");
    eprintln!("       repro list");
    eprintln!("       (--threads 0 = one per core; outputs are identical at any N)");
    eprintln!("       [--faults RATE[:SEED]] [--retry N[:BASE_MS]] [--budget CALLS]");
    eprintln!("       (fault knobs apply to every oracle; outputs stay identical — I6 —");
    eprintln!("        while billed call counts grow by exactly the injected faults)");
    eprintln!("       [--trace-dir DIR] writes one JSONL trace per oracle under");
    eprintln!("        DIR/<experiment-id>/run-NNNN.jsonl (see `prox-cli report`)");
    ExitCode::FAILURE
}

/// Splits `value[:suffix]`, parsing both halves.
fn split_opt<A: std::str::FromStr, B: std::str::FromStr>(s: &str) -> Option<(A, Option<B>)> {
    match s.split_once(':') {
        Some((head, tail)) => Some((head.parse().ok()?, Some(tail.parse().ok()?))),
        None => Some((s.parse().ok()?, None)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut scale = Scale::Small;
    let mut ids: Vec<String> = Vec::new();
    let mut oracle_cfg: Option<OracleConfig> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-dir" => match it.next() {
                Some(dir) => trace_dir = Some(dir.into()),
                None => {
                    eprintln!("--trace-dir needs a directory");
                    return usage();
                }
            },
            "--scale" => match it.next().as_deref() {
                Some("small") => scale = Scale::Small,
                Some("full") => scale = Scale::Full,
                other => {
                    eprintln!("unknown scale {other:?}");
                    return usage();
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(t) => prox_exec::set_global_threads(t),
                None => {
                    eprintln!("--threads needs a number (0 = one per core)");
                    return usage();
                }
            },
            "--faults" => match it.next().as_deref().and_then(split_opt) {
                Some((rate, seed)) => {
                    oracle_cfg.get_or_insert_with(OracleConfig::default).faults =
                        Some(FaultInjector::new(rate, seed.unwrap_or(42)));
                }
                None => {
                    eprintln!("--faults needs RATE[:SEED]");
                    return usage();
                }
            },
            "--retry" => match it.next().as_deref().and_then(split_opt::<u32, u64>) {
                Some((n, base_ms)) => {
                    let mut policy = RetryPolicy::standard(n);
                    if let Some(ms) = base_ms {
                        policy.base = Duration::from_millis(ms);
                    }
                    oracle_cfg.get_or_insert_with(OracleConfig::default).retry = policy;
                }
                None => {
                    eprintln!("--retry needs N[:BASE_MS]");
                    return usage();
                }
            },
            "--budget" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(calls) => {
                    oracle_cfg.get_or_insert_with(OracleConfig::default).budget =
                        CallBudget::calls(calls);
                }
                None => {
                    eprintln!("--budget needs a call count");
                    return usage();
                }
            },
            "list" => {
                for e in experiments::all() {
                    println!("{:<8} {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            _ => ids.push(arg),
        }
    }

    if ids.iter().any(|id| id == "all") {
        ids = experiments::all()
            .iter()
            .map(|e| e.id.to_string())
            .collect();
    }
    if ids.is_empty() {
        return usage();
    }
    if let Some(cfg) = oracle_cfg {
        eprintln!("[repro] fault knobs installed: {cfg:?}");
        set_oracle_config(cfg);
    }

    for id in &ids {
        match experiments::by_id(id) {
            Some(e) => {
                // Per-figure traces: every oracle this experiment builds
                // writes its own numbered JSONL file under DIR/<id>/.
                if let Some(dir) = &trace_dir {
                    let fig_dir = dir.join(id);
                    if let Err(e) = std::fs::create_dir_all(&fig_dir) {
                        eprintln!("[repro] create {}: {e}", fig_dir.display());
                        return ExitCode::FAILURE;
                    }
                    set_trace_dir(Some(fig_dir));
                }
                eprintln!("[repro] running {id} ({:?} scale)…", scale);
                let t = std::time::Instant::now();
                (e.run)(scale);
                eprintln!("[repro] {id} done in {:.1?}", t.elapsed());
            }
            None => {
                eprintln!("unknown experiment {id:?}; try `repro list`");
                return ExitCode::FAILURE;
            }
        }
    }
    set_trace_dir(None);
    ExitCode::SUCCESS
}
