//! `prox-cli` — run any proximity algorithm × plug-in × dataset from the
//! command line, with full oracle accounting.
//!
//! ```text
//! prox-cli prim    --dataset urbangb --n 400 --plug tri
//! prox-cli knng    --dataset sf --n 300 --plug splub --k 5
//! prox-cli pam     --dataset flickr --n 200 --plug laesa --l 8
//! prox-cli tsp     --dataset sf --n 150 --plug vanilla
//! prox-cli kcenter --dataset strings --n 200 --plug tri --l 6 --cache dists.csv
//! ```
//!
//! `--cache FILE` loads previously resolved distances before the run and
//! saves the (possibly grown) set afterwards — the workflow for oracles
//! billed per call. The cache covers the algorithm phase; landmark
//! bootstraps still call the oracle (use `--plug tri-nb` with a warm cache
//! for fully call-free reruns). A cache is only valid for the same
//! `--dataset`, `--n`, and `--seed`.

use std::process::ExitCode;
use std::time::Duration;

use prox_algos::{
    average_linkage_cut, clarans, complete_linkage, k_center, knn_graph, kruskal_mst, pam,
    prim_mst, single_linkage, tsp_2opt, ClaransParams, DistanceResolver, PamParams,
};
use prox_bench::runner::{log_landmarks, run_plugged_cached, Plug};
use prox_core::{load_known, save_known, Metric, Pair};
use prox_datasets::by_name;

struct Args {
    algo: String,
    dataset: String,
    n: usize,
    plug: Plug,
    landmarks: Option<usize>,
    seed: u64,
    k: usize,
    l: usize,
    oracle_cost_ms: u64,
    cache: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: prox-cli <prim|kruskal|knng|pam|clarans|kcenter|tsp|linkage|complete-linkage|average-linkage-cut>\n\
         \x20       --dataset <sf|urbangb|flickr|strings> --n <N>\n\
         \x20       [--plug vanilla|tri|tri-nb|splub|adm|laesa|tlaesa|dft]\n\
         \x20       [--landmarks K] [--seed S] [--k 5] [--l 10]\n\
         \x20       [--oracle-cost-ms MS] [--cache FILE] [--threads N]"
    );
    ExitCode::FAILURE
}

fn parse() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let algo = argv.next()?;
    let mut a = Args {
        algo,
        dataset: "sf".into(),
        n: 200,
        plug: Plug::TriBoot,
        landmarks: None,
        seed: 42,
        k: 5,
        l: 10,
        oracle_cost_ms: 0,
        cache: None,
    };
    while let Some(flag) = argv.next() {
        let mut val = || argv.next();
        match flag.as_str() {
            "--dataset" => a.dataset = val()?,
            "--n" => a.n = val()?.parse().ok()?,
            "--plug" => {
                a.plug = match val()?.as_str() {
                    "vanilla" => Plug::Vanilla,
                    "tri" => Plug::TriBoot,
                    "tri-nb" => Plug::TriNb,
                    "splub" => Plug::Splub,
                    "adm" => Plug::Adm,
                    "laesa" => Plug::Laesa,
                    "tlaesa" => Plug::Tlaesa,
                    "dft" => Plug::Dft,
                    other => {
                        eprintln!("unknown plug {other:?}");
                        return None;
                    }
                }
            }
            "--landmarks" => a.landmarks = Some(val()?.parse().ok()?),
            "--seed" => a.seed = val()?.parse().ok()?,
            "--k" => a.k = val()?.parse().ok()?,
            "--l" => a.l = val()?.parse().ok()?,
            "--oracle-cost-ms" => a.oracle_cost_ms = val()?.parse().ok()?,
            "--cache" => a.cache = Some(val()?),
            // 0 = one per core. Results and oracle-call counts are
            // identical at any thread count (speculate/commit protocol).
            "--threads" => prox_exec::set_global_threads(val()?.parse().ok()?),
            other => {
                eprintln!("unknown flag {other:?}");
                return None;
            }
        }
    }
    Some(a)
}

fn main() -> ExitCode {
    let Some(args) = parse() else {
        return usage();
    };
    const ALGOS: &[&str] = &[
        "prim",
        "kruskal",
        "knng",
        "pam",
        "clarans",
        "kcenter",
        "tsp",
        "linkage",
        "complete-linkage",
        "average-linkage-cut",
    ];
    if !ALGOS.contains(&args.algo.as_str()) {
        eprintln!("unknown algorithm {:?}", args.algo);
        return usage();
    }
    let Some(dataset) = by_name(&args.dataset) else {
        eprintln!("unknown dataset {:?}", args.dataset);
        return usage();
    };
    if args.n < 2 {
        eprintln!("--n must be at least 2");
        return ExitCode::FAILURE;
    }
    let metric = dataset.metric(args.n, args.seed);
    let landmarks = args.landmarks.unwrap_or_else(|| log_landmarks(args.n));

    // Pre-load a resolved-distance cache, if any.
    let preload: Vec<(Pair, f64)> = match &args.cache {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => match load_known(std::io::BufReader::new(f)) {
                Ok(edges) => {
                    eprintln!(
                        "[cache] loaded {} resolved distances from {path}",
                        edges.len()
                    );
                    edges
                }
                Err(e) => {
                    eprintln!("[cache] {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                eprintln!("[cache] {path} not found; starting cold");
                Vec::new()
            }
        },
        None => Vec::new(),
    };

    let seed = args.seed;
    let (summary, result, resolved) = {
        let algo = args.algo.clone();
        let (k, l) = (args.k, args.l);
        let run = move |r: &mut dyn DistanceResolver| -> String {
            match algo.as_str() {
                "prim" => {
                    let mst = prim_mst(r);
                    format!(
                        "MST weight {:.6} ({} edges)",
                        mst.total_weight,
                        mst.edges.len()
                    )
                }
                "kruskal" => {
                    let mst = kruskal_mst(r);
                    format!(
                        "MST weight {:.6} ({} edges)",
                        mst.total_weight,
                        mst.edges.len()
                    )
                }
                "knng" => {
                    let g = knn_graph(r, k);
                    format!("kNN graph built (k = {k}, {} nodes)", g.len())
                }
                "pam" => {
                    let c = pam(
                        r,
                        PamParams {
                            l,
                            max_swaps: 50,
                            seed,
                        },
                    );
                    format!("PAM cost {:.6}, medoids {:?}", c.cost, c.medoids)
                }
                "clarans" => {
                    let c = clarans(
                        r,
                        ClaransParams {
                            l,
                            numlocal: 2,
                            maxneighbor: 150,
                            seed,
                        },
                    );
                    format!("CLARANS cost {:.6}, medoids {:?}", c.cost, c.medoids)
                }
                "kcenter" => {
                    let s = k_center(r, l, 0);
                    format!("k-center radius {:.6}, centers {:?}", s.radius, s.centers)
                }
                "tsp" => {
                    let t = tsp_2opt(r, 0, 50);
                    format!("tour length {:.6} over {} cities", t.length, t.order.len())
                }
                "linkage" => {
                    let d = single_linkage(r);
                    let top = d.merges.last().map(|m| m.height).unwrap_or(0.0);
                    format!(
                        "dendrogram: {} merges, top height {:.6}",
                        d.merges.len(),
                        top
                    )
                }
                "complete-linkage" => {
                    let d = complete_linkage(r);
                    let top = d.merges.last().map(|m| m.height).unwrap_or(0.0);
                    format!(
                        "complete-linkage dendrogram: {} merges, top height {:.6}",
                        d.merges.len(),
                        top
                    )
                }
                "average-linkage-cut" => {
                    // Full UPGMA dendrograms provably need all pairs (see
                    // prox_algos::average_linkage); the CLI exposes the
                    // topology-only cut where bounds actually save.
                    let labels = average_linkage_cut(r, args.l);
                    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
                    format!(
                        "average-linkage cut: {k} clusters over {} objects",
                        labels.len()
                    )
                }
                other => unreachable!("validated algorithm name: {other}"),
            }
        };
        run_plugged_cached(
            args.plug,
            &*metric,
            landmarks,
            args.seed,
            &preload,
            args.cache.is_some(),
            run,
        )
    };

    // Persist everything we now know *before* printing: a reader closing
    // our stdout early (`prox-cli ... | head`) delivers SIGPIPE on the next
    // println, and the cache must survive that.
    if let Some(path) = &args.cache {
        match std::fs::File::create(path) {
            Ok(f) => match save_known(std::io::BufWriter::new(f), resolved.iter().copied()) {
                Ok(count) => eprintln!("[cache] saved {count} resolved distances to {path}"),
                Err(e) => eprintln!("[cache] write {path}: {e}"),
            },
            Err(e) => eprintln!("[cache] create {path}: {e}"),
        }
    }

    println!("{summary}");
    println!(
        "oracle calls : {} (bootstrap {}, algorithm {})",
        result.total_calls(),
        result.bootstrap_calls,
        result.algo_calls
    );
    println!(
        "cpu time     : {:.3?} (bootstrap {:.3?})",
        result.wall, result.bootstrap_wall
    );
    if args.oracle_cost_ms > 0 {
        let cost = Duration::from_millis(args.oracle_cost_ms);
        println!(
            "completion   : {:.3?} at {} ms/call",
            result.completion_time(cost),
            args.oracle_cost_ms
        );
    }
    println!(
        "without plug : {} calls (all pairs)",
        Pair::count(metric.len())
    );

    ExitCode::SUCCESS
}
