//! `prox-cli` — run any proximity algorithm × plug-in × dataset from the
//! command line, with full oracle accounting.
//!
//! ```text
//! prox-cli prim    --dataset urbangb --n 400 --plug tri
//! prox-cli knng    --dataset sf --n 300 --plug splub --k 5
//! prox-cli pam     --dataset flickr --n 200 --plug laesa --l 8
//! prox-cli tsp     --dataset sf --n 150 --plug vanilla
//! prox-cli kcenter --dataset strings --n 200 --plug tri --l 6 --cache dists.csv
//! ```
//!
//! `--cache FILE` loads previously resolved distances before the run and
//! saves the (possibly grown) set afterwards — the workflow for oracles
//! billed per call. The cache covers the algorithm phase; landmark
//! bootstraps still call the oracle (use `--plug tri-nb` with a warm cache
//! for fully call-free reruns). A cache is only valid for the same
//! `--dataset`, `--n`, and `--seed`.
//!
//! Fault tolerance (DESIGN.md §9): `--faults RATE[:SEED]` injects
//! deterministic transient faults, `--retry N[:BASE_MS]` retries them with
//! exponential backoff charged as virtual time, `--budget CALLS` caps total
//! billed oracle attempts, `--checkpoint FILE[:EVERY]` snapshots resolved
//! distances every EVERY resolutions (and once at exit, clean or not), and
//! `--resume FILE` preloads a previous run's checkpoint so only the missing
//! pairs are re-paid:
//!
//! ```text
//! prox-cli prim --dataset sf --n 300 --plug tri \
//!     --faults 0.05 --retry 3 --budget 20000 --checkpoint run.ckpt
//! prox-cli prim --dataset sf --n 300 --plug tri --resume run.ckpt
//! ```
//!
//! Untrusted oracles (DESIGN.md §11): `--corrupt RATE[:SEED]` injects
//! deterministic *value* corruptions (the oracle lies instead of
//! failing), `--vote K[:N]` audits every resolution by deterministic
//! first-to-K majority voting, and `--corrupt` without `--vote` runs in
//! detection mode — accepted values are checked against the certified
//! bound sandwich and escalated to a vote only on a proven
//! inconsistency. `--lenient-load` salvages the verified prefix of a
//! damaged `--cache`/`--resume` file instead of refusing it:
//!
//! ```text
//! prox-cli prim --dataset sf --n 300 --plug tri --corrupt 0.05 --vote 3
//! prox-cli prim --dataset sf --n 300 --plug tri --resume run.ckpt --lenient-load
//! ```
//!
//! Weak/strong cascade (DESIGN.md §14): `--weak RATE[:SEED]` puts a cheap,
//! deterministic-error weak oracle in front of the strong tier — every
//! fresh pair is first vote-resolved weakly and sandwich-checked against
//! the certified bounds, and only unresolvable pairs escalate to the
//! billed strong oracle. Outputs stay byte-identical (invariant I10);
//! only the bill moves. `--degrade` additionally lets the run *finish* on
//! weak+bounds when the strong tier is lost mid-run (budget exhaustion,
//! permanent fault) instead of aborting:
//!
//! ```text
//! prox-cli prim --dataset sf --n 300 --plug tri --weak 0.05
//! prox-cli prim --dataset sf --n 300 --plug tri --weak 0.2 --budget 500 --degrade
//! ```
//!
//! Serving layer (DESIGN.md §16): `prox-cli serve` keeps certified
//! distances alive *across* runs in a crash-safe WAL-backed store
//! shared by every client of the same problem instance. Session `i` of
//! `--sessions S` takes script lines `i, i+S, …`; `--admit CALLS` caps
//! what one group may cost a client (deterministic
//! reject-with-retry-hint, never blocking the store), and a second
//! client over the same `--store` pays strictly fewer strong calls:
//!
//! ```text
//! prox-cli serve --store runs/sf --dataset sf --n 200 --groups 8
//! prox-cli serve --store runs/sf --dataset sf --n 200 --groups 8   # ~free
//! ```

use std::cell::RefCell;
use std::process::ExitCode;
use std::rc::Rc;
use std::time::Duration;

use prox_algos::{
    try_average_linkage_cut, try_clarans, try_complete_linkage, try_k_center, try_knn_graph,
    try_kruskal_mst, try_pam, try_prim_mst, try_single_linkage, try_tsp_2opt, ClaransParams,
    DistanceResolver, PamParams,
};
use prox_bench::runner::{
    log_landmarks, set_oracle_config, try_run_plugged_observed, OracleConfig, Plug, RunObservers,
};
use prox_bench::CheckpointingResolver;
use prox_core::{
    load_known, load_known_lenient, read_checkpoint_file, read_checkpoint_file_lenient, save_known,
    write_checkpoint_file, CallBudget, CorruptionInjector, FaultInjector, Metric, OracleError,
    Pair, RetryPolicy,
};
use prox_datasets::by_name;
use prox_obs::{
    semantic_diff, summarize, JsonlSink, Metrics, ProvenanceLedger, SpanTree, TraceSink,
};
use prox_serve::{
    default_script, emit_recovery, parse_script, BoundServer, PairGroupQuery, ServeConfig,
    SessionConfig, SharedStore, WalConfig,
};

struct Args {
    algo: String,
    dataset: String,
    n: usize,
    plug: Plug,
    landmarks: Option<usize>,
    seed: u64,
    k: usize,
    l: usize,
    oracle_cost_ms: u64,
    cache: Option<String>,
    /// `--faults RATE[:SEED]` (seed defaults to `--seed`).
    faults: Option<(f64, Option<u64>)>,
    /// `--retry N[:BASE_MS]`.
    retry: Option<(u32, Option<u64>)>,
    /// `--budget CALLS`.
    budget: Option<u64>,
    /// `--corrupt RATE[:SEED]` (seed defaults to `--seed`).
    corrupt: Option<(f64, Option<u64>)>,
    /// `--vote K[:N]` (`K` alone means first-to-K with no extra pool,
    /// i.e. `K:K`).
    vote: Option<(u32, u32)>,
    /// `--weak RATE[:SEED]` (seed defaults to `--seed`).
    weak: Option<(f64, Option<u64>)>,
    /// `--degrade`: finish on weak+bounds when the strong tier is lost.
    degrade: bool,
    /// `--checkpoint FILE[:EVERY]`.
    checkpoint: Option<(String, u64)>,
    /// `--resume FILE`.
    resume: Option<String>,
    /// `--lenient-load`: salvage the verified prefix of a damaged
    /// `--cache` or `--resume` file instead of aborting.
    lenient_load: bool,
    /// `--trace FILE` (or the `trace` subcommand's `--out FILE`): write a
    /// structured JSONL event trace of the run.
    trace: Option<String>,
    /// `--metrics`: attach a metrics registry without a trace sink and
    /// dump the full registry (counters + histogram p50/p99) on stdout in
    /// stable sorted order after the run. Unlike `--trace` this leaves
    /// the SPLUB query cascade enabled, so the per-tier counters
    /// (`splub_ado_decisive`, `splub_bidi_early_exit`,
    /// `splub_full_fallback`) are live.
    metrics: bool,
    /// `prox-cli profile <algo>`: trace the run, then print the replayed
    /// span tree (self-vs-total rollups).
    profile: bool,
    /// `--out FILE.folded` in profile mode: also write collapsed stacks
    /// for flamegraph tooling.
    profile_out: Option<String>,
    /// `--ledger FILE`: dump the run's provenance ledger as JSONL.
    ledger: Option<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: prox-cli <prim|kruskal|knng|pam|clarans|kcenter|tsp|linkage|complete-linkage|average-linkage-cut>\n\
         \x20       --dataset <sf|urbangb|flickr|strings> --n <N>\n\
         \x20       [--plug vanilla|tri|tri-nb|splub|adm|laesa|tlaesa|dft]\n\
         \x20       [--landmarks K] [--seed S] [--k 5] [--l 10]\n\
         \x20       [--oracle-cost-ms MS] [--cache FILE] [--threads N]\n\
         \x20       [--faults RATE[:SEED]] [--retry N[:BASE_MS]] [--budget CALLS]\n\
         \x20       [--corrupt RATE[:SEED]] [--vote K[:N]]\n\
         \x20       [--weak RATE[:SEED]] [--degrade]\n\
         \x20       [--checkpoint FILE[:EVERY]] [--resume FILE] [--lenient-load]\n\
         \x20       [--trace FILE.jsonl] [--metrics] [--ledger FILE.jsonl]\n\
         \x20  prox-cli trace <algo> [same flags] [--out FILE.jsonl]\n\
         \x20  prox-cli profile <algo> [same flags] [--out FILE.folded]\n\
         \x20  prox-cli report <FILE.jsonl>\n\
         \x20  prox-cli diff <A.jsonl> <B.jsonl>\n\
         \x20  prox-cli replay <FILE.jsonl>\n\
         \x20  prox-cli serve --store DIR [--dataset D] [--n N] [--seed S]\n\
         \x20       [--sessions N] [--admit CALLS] [--client-script FILE] [--groups G]\n\
         \x20       [--weak RATE[:SEED]] [--degrade] [--kill-after-commits K]\n\
         \x20       [--threads N] [--trace FILE.jsonl]"
    );
    ExitCode::FAILURE
}

/// Splits `value[:suffix]`, parsing both halves.
fn split_opt<A: std::str::FromStr, B: std::str::FromStr>(s: &str) -> Option<(A, Option<B>)> {
    match s.split_once(':') {
        Some((head, tail)) => Some((head.parse().ok()?, Some(tail.parse().ok()?))),
        None => Some((s.parse().ok()?, None)),
    }
}

fn parse() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let mut algo = argv.next()?;
    // `prox-cli trace <algo> ...` is `<algo> ... --trace trace.jsonl`
    // with a subcommand spelling; `--out` overrides the default path.
    // `prox-cli profile <algo> ...` also traces (spans ride the trace),
    // but its `--out` names the collapsed-stack file instead.
    let mut trace = None;
    let mut profile = false;
    if algo == "trace" {
        algo = argv.next()?;
        trace = Some("trace.jsonl".to_string());
    } else if algo == "profile" {
        algo = argv.next()?;
        trace = Some("profile.trace.jsonl".to_string());
        profile = true;
    }
    let mut a = Args {
        algo,
        dataset: "sf".into(),
        n: 200,
        plug: Plug::TriBoot,
        landmarks: None,
        seed: 42,
        k: 5,
        l: 10,
        oracle_cost_ms: 0,
        cache: None,
        faults: None,
        retry: None,
        budget: None,
        corrupt: None,
        vote: None,
        weak: None,
        degrade: false,
        checkpoint: None,
        resume: None,
        lenient_load: false,
        trace,
        metrics: false,
        profile,
        profile_out: None,
        ledger: None,
    };
    while let Some(flag) = argv.next() {
        let mut val = || argv.next();
        match flag.as_str() {
            "--dataset" => a.dataset = val()?,
            "--n" => a.n = val()?.parse().ok()?,
            "--plug" => {
                a.plug = match val()?.as_str() {
                    "vanilla" => Plug::Vanilla,
                    "tri" => Plug::TriBoot,
                    "tri-nb" => Plug::TriNb,
                    "splub" => Plug::Splub,
                    "adm" => Plug::Adm,
                    "laesa" => Plug::Laesa,
                    "tlaesa" => Plug::Tlaesa,
                    "dft" => Plug::Dft,
                    other => {
                        eprintln!("unknown plug {other:?}");
                        return None;
                    }
                }
            }
            "--landmarks" => a.landmarks = Some(val()?.parse().ok()?),
            "--seed" => a.seed = val()?.parse().ok()?,
            "--k" => a.k = val()?.parse().ok()?,
            "--l" => a.l = val()?.parse().ok()?,
            "--oracle-cost-ms" => a.oracle_cost_ms = val()?.parse().ok()?,
            "--cache" => a.cache = Some(val()?),
            "--faults" => {
                let raw = val()?;
                let Some((rate, seed)) = split_opt::<f64, u64>(&raw) else {
                    eprintln!("--faults expects RATE[:SEED], got {raw:?}");
                    return None;
                };
                if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
                    eprintln!("--faults rate must be a probability in (0, 1], got {rate}");
                    return None;
                }
                a.faults = Some((rate, seed));
            }
            "--retry" => {
                let raw = val()?;
                let Some((n, base_ms)) = split_opt::<u32, u64>(&raw) else {
                    eprintln!("--retry expects N[:BASE_MS], got {raw:?}");
                    return None;
                };
                if n == 0 {
                    eprintln!("--retry 0 retries nothing; drop the flag instead");
                    return None;
                }
                a.retry = Some((n, base_ms));
            }
            "--budget" => {
                let raw = val()?;
                let Ok(calls) = raw.parse::<u64>() else {
                    eprintln!("--budget expects a call count, got {raw:?}");
                    return None;
                };
                if calls == 0 {
                    eprintln!("--budget 0 forbids every oracle call; nothing could run");
                    return None;
                }
                a.budget = Some(calls);
            }
            "--corrupt" => {
                let raw = val()?;
                let Some((rate, seed)) = split_opt::<f64, u64>(&raw) else {
                    eprintln!("--corrupt expects RATE[:SEED], got {raw:?}");
                    return None;
                };
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    eprintln!("--corrupt rate must be a probability in [0, 1], got {rate}");
                    return None;
                }
                a.corrupt = Some((rate, seed));
            }
            "--vote" => {
                let raw = val()?;
                let Some((k, n)) = split_opt::<u32, u32>(&raw) else {
                    eprintln!("--vote expects K[:N], got {raw:?}");
                    return None;
                };
                let n = n.unwrap_or(k);
                if k == 0 || n < k {
                    eprintln!("--vote needs N >= K >= 1, got K={k}, N={n}");
                    return None;
                }
                a.vote = Some((k, n));
            }
            "--weak" => {
                let raw = val()?;
                let Some((rate, seed)) = split_opt::<f64, u64>(&raw) else {
                    eprintln!("--weak expects RATE[:SEED], got {raw:?}");
                    return None;
                };
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    eprintln!("--weak rate must be a probability in [0, 1], got {rate}");
                    return None;
                }
                a.weak = Some((rate, seed));
            }
            "--degrade" => a.degrade = true,
            "--checkpoint" => {
                let (path, every): (String, Option<u64>) = split_opt(&val()?)?;
                a.checkpoint = Some((path, every.unwrap_or(256)));
            }
            "--resume" => a.resume = Some(val()?),
            "--lenient-load" => a.lenient_load = true,
            "--trace" => a.trace = Some(val()?),
            "--out" => {
                let v = val()?;
                if a.profile {
                    a.profile_out = Some(v);
                } else {
                    a.trace = Some(v);
                }
            }
            "--metrics" => a.metrics = true,
            "--ledger" => a.ledger = Some(val()?),
            // 0 = one per core. Results and oracle-call counts are
            // identical at any thread count (speculate/commit protocol).
            "--threads" => prox_exec::set_global_threads(val()?.parse().ok()?),
            other => {
                eprintln!("unknown flag {other:?}");
                return None;
            }
        }
    }
    if a.degrade && a.weak.is_none() {
        eprintln!("--degrade requires --weak (there is no weak tier to finish on)");
        return None;
    }
    Some(a)
}

/// `prox-cli report FILE.jsonl`: summarize a trace written by `--trace`.
fn report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[report] read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match summarize(&text) {
        Ok(summary) => {
            print!("{}", summary.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[report] {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `prox-cli diff A B`: semantic divergence between two traces. Exit code
/// is the verdict (0 = semantically identical), so CI can gate on it.
fn diff(a: &str, b: &str) -> ExitCode {
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("[diff] read {path}: {e}");
            None
        }
    };
    let (Some(ta), Some(tb)) = (read(a), read(b)) else {
        return ExitCode::FAILURE;
    };
    let d = semantic_diff(&ta, &tb);
    println!("A: {a}\nB: {b}");
    print!("{}", d.render());
    if d.identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `prox-cli replay F`: revalidate a saved trace offline. Exit code is
/// the verdict (0 = internally consistent).
fn replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[replay] read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match prox_obs::replay(&text) {
        Ok(rep) => {
            print!("{}", rep.render());
            if rep.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("[replay] {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `prox-cli serve`: flags for the shared-store serving loop.
struct ServeArgs {
    /// `--store DIR` (required): the crash-safe WAL directory.
    store: String,
    dataset: String,
    n: usize,
    seed: u64,
    /// `--sessions N`: concurrent client sessions (round-robin lines).
    sessions: u32,
    /// `--admit CALLS`: per-group admission budget (0 = unlimited).
    admit: u64,
    /// The parsed workload (from `--client-script FILE` or generated).
    script: Vec<PairGroupQuery>,
    /// Where the workload came from, for the summary line.
    script_source: String,
    weak: Option<(f64, Option<u64>)>,
    degrade: bool,
    /// `--kill-after-commits K`: the chaos kill switch.
    kill_after_commits: Option<u64>,
    trace: Option<String>,
}

fn parse_serve() -> Option<ServeArgs> {
    let mut argv = std::env::args().skip(2);
    let mut store: Option<String> = None;
    let mut dataset = "sf".to_string();
    let mut n = 200usize;
    let mut seed = 42u64;
    let mut sessions = 1u32;
    let mut admit = 0u64;
    let mut client_script: Option<String> = None;
    let mut groups = 8usize;
    let mut weak: Option<(f64, Option<u64>)> = None;
    let mut degrade = false;
    let mut kill_after_commits: Option<u64> = None;
    let mut trace: Option<String> = None;
    while let Some(flag) = argv.next() {
        let mut val = || argv.next();
        match flag.as_str() {
            "--store" => {
                let raw = val()?;
                if raw.is_empty() || raw.starts_with('-') || std::path::Path::new(&raw).is_file() {
                    eprintln!("--store expects a directory path, got {raw:?}");
                    return None;
                }
                store = Some(raw);
            }
            "--dataset" => dataset = val()?,
            "--n" => n = val()?.parse().ok()?,
            "--seed" => seed = val()?.parse().ok()?,
            "--sessions" => {
                let raw = val()?;
                match raw.parse::<u32>() {
                    Ok(s) if s >= 1 => sessions = s,
                    _ => {
                        eprintln!("--sessions expects a positive session count, got {raw:?}");
                        return None;
                    }
                }
            }
            "--admit" => {
                let raw = val()?;
                let Ok(calls) = raw.parse::<u64>() else {
                    eprintln!("--admit expects a call count, got {raw:?}");
                    return None;
                };
                if calls == 0 {
                    eprintln!("--admit 0 admits nothing; drop the flag for unlimited admission");
                    return None;
                }
                admit = calls;
            }
            "--client-script" => client_script = Some(val()?),
            "--groups" => {
                let raw = val()?;
                match raw.parse::<usize>() {
                    Ok(g) if g >= 1 => groups = g,
                    _ => {
                        eprintln!("--groups expects a positive group count, got {raw:?}");
                        return None;
                    }
                }
            }
            "--weak" => {
                let raw = val()?;
                let Some((rate, wseed)) = split_opt::<f64, u64>(&raw) else {
                    eprintln!("--weak expects RATE[:SEED], got {raw:?}");
                    return None;
                };
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    eprintln!("--weak rate must be a probability in [0, 1], got {rate}");
                    return None;
                }
                weak = Some((rate, wseed));
            }
            "--degrade" => degrade = true,
            "--kill-after-commits" => {
                let raw = val()?;
                match raw.parse::<u64>() {
                    Ok(k) if k >= 1 => kill_after_commits = Some(k),
                    _ => {
                        eprintln!(
                            "--kill-after-commits expects a positive commit count, got {raw:?}"
                        );
                        return None;
                    }
                }
            }
            "--trace" => trace = Some(val()?),
            "--threads" => prox_exec::set_global_threads(val()?.parse().ok()?),
            other => {
                eprintln!("unknown serve flag {other:?}");
                return None;
            }
        }
    }
    let Some(store) = store else {
        eprintln!("serve requires --store DIR (the WAL-backed store directory shared across runs)");
        return None;
    };
    if degrade && weak.is_none() {
        eprintln!("--degrade requires --weak (there is no weak tier to finish on)");
        return None;
    }
    if n < 2 {
        eprintln!("--n must be at least 2");
        return None;
    }
    let (script, script_source) = match &client_script {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("--client-script {path}: {e}");
                    return None;
                }
            };
            match parse_script(&text, n) {
                Ok(s) => (s, path.clone()),
                Err(e) => {
                    eprintln!("--client-script {path}: {e}");
                    return None;
                }
            }
        }
        None => (
            default_script(n, groups, seed),
            format!("default workload ({groups} groups)"),
        ),
    };
    Some(ServeArgs {
        store,
        dataset,
        n,
        seed,
        sessions,
        admit,
        script,
        script_source,
        weak,
        degrade,
        kill_after_commits,
        trace,
    })
}

/// `prox-cli serve`: open (or recover) the shared store, serve the
/// script, commit everything certified, and leave the WAL behind for
/// the next client.
fn serve(args: &ServeArgs) -> ExitCode {
    let Some(dataset) = by_name(&args.dataset) else {
        eprintln!("unknown dataset {:?}", args.dataset);
        return ExitCode::FAILURE;
    };
    let metric = dataset.metric(args.n, args.seed);

    // The manifest binds the store directory to one problem instance;
    // a WAL recorded for a different dataset/n/seed is refused at open.
    let manifest: Vec<(String, String)> = [
        ("dataset", args.dataset.clone()),
        ("n", args.n.to_string()),
        ("seed", args.seed.to_string()),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();

    let mut trace_sink: Option<Rc<JsonlSink>> = None;
    let mut sink: Option<Rc<dyn TraceSink>> = None;
    if let Some(path) = &args.trace {
        match JsonlSink::create(path) {
            Ok(s) => {
                let s = Rc::new(s);
                sink = Some(Rc::<JsonlSink>::clone(&s) as Rc<dyn TraceSink>);
                trace_sink = Some(s);
            }
            Err(e) => {
                eprintln!("[trace] create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (store, recovery) = match SharedStore::open(
        std::path::Path::new(&args.store),
        &manifest,
        WalConfig::default(),
    ) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[store] open {}: {e}", args.store);
            return ExitCode::FAILURE;
        }
    };
    emit_recovery(sink.as_ref(), &recovery);
    if recovery.entries > 0 || recovery.salvaged {
        let salvage = if recovery.salvaged {
            format!(
                " (salvaged; {} damaged line(s) dropped)",
                recovery.dropped_lines
            )
        } else {
            String::new()
        };
        eprintln!(
            "[store] recovered {} certified entries from {} WAL segment(s){salvage}",
            recovery.entries, recovery.segments
        );
    } else {
        eprintln!("[store] {}: empty store; starting cold", args.store);
    }

    let config = ServeConfig {
        sessions: args.sessions,
        session: SessionConfig {
            admit: args.admit,
            weak: args
                .weak
                .map(|(rate, wseed)| (rate, wseed.unwrap_or(args.seed))),
            degrade: args.degrade,
            ..SessionConfig::default()
        },
        kill_after_commits: args.kill_after_commits,
    };
    let out = BoundServer::new(&*metric, &store, config).run(&args.script, sink.as_ref());

    if let (Some(path), Some(s)) = (&args.trace, &trace_sink) {
        s.flush();
        if s.io_errors() > 0 {
            eprintln!(
                "[trace] WARNING: {path}: {} write error(s) — events may be missing",
                s.io_errors()
            );
        } else {
            eprintln!("[trace] {} events -> {path}", s.emitted());
        }
    }

    let admitted: u64 = out.stats.iter().map(|s| s.admitted).sum();
    let rejected: u64 = out.stats.iter().map(|s| s.rejected).sum();
    let degraded: u64 = out.stats.iter().map(|s| s.degraded).sum();
    let strong: u64 = out.stats.iter().map(|s| s.strong_calls).sum();
    let hits: u64 = out.stats.iter().map(|s| s.store_hits).sum();
    let commits: u64 = out.stats.iter().map(|s| s.commits).sum();
    let fenced: u64 = out.stats.iter().map(|s| s.fenced).sum();
    println!(
        "serve        : {} of {} groups served over {} session(s), {}",
        out.responses.len(),
        args.script.len(),
        args.sessions,
        args.script_source
    );
    println!("admission    : {admitted} admitted, {rejected} rejected, {degraded} degraded");
    println!("strong calls : {strong} ({hits} store hits)");
    println!("commits      : {commits} ({fenced} fenced)");
    println!(
        "store        : {} certified entries at generation {} ({} WAL-logged)",
        out.store_entries,
        out.generation,
        store.wal_entries_logged()
    );
    if args.sessions > 1 {
        for (i, s) in out.stats.iter().enumerate() {
            println!(
                "  session {i}  : {} admitted, {} rejected, {} degraded; {} strong calls, \
                 {} store hits; {} commits, {} fenced",
                s.admitted,
                s.rejected,
                s.degraded,
                s.strong_calls,
                s.store_hits,
                s.commits,
                s.fenced
            );
        }
    }
    if !out.dropped_lines.is_empty() {
        eprintln!(
            "[serve] WARNING: dropped {} group(s) (script line(s) {:?}) — admission can never \
             pass at --admit {}; raise the budget or split the group",
            out.dropped_lines.len(),
            out.dropped_lines,
            args.admit
        );
    }
    if !out.ledger.is_empty() {
        print!("{}", out.ledger.render());
    }
    if out.crashed {
        eprintln!(
            "[serve] server crashed; the WAL holds every acknowledged commit — rerun with the \
             same --store to recover and pay only the missing calls"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => {
            return match parse_serve() {
                Some(args) => serve(&args),
                None => usage(),
            };
        }
        Some("report") => {
            return match std::env::args().nth(2) {
                Some(path) => report(&path),
                None => usage(),
            };
        }
        Some("diff") => {
            return match (std::env::args().nth(2), std::env::args().nth(3)) {
                (Some(a), Some(b)) => diff(&a, &b),
                _ => usage(),
            };
        }
        Some("replay") => {
            return match std::env::args().nth(2) {
                Some(path) => replay(&path),
                None => usage(),
            };
        }
        _ => {}
    }
    let Some(args) = parse() else {
        return usage();
    };
    const ALGOS: &[&str] = &[
        "prim",
        "kruskal",
        "knng",
        "pam",
        "clarans",
        "kcenter",
        "tsp",
        "linkage",
        "complete-linkage",
        "average-linkage-cut",
    ];
    if !ALGOS.contains(&args.algo.as_str()) {
        eprintln!("unknown algorithm {:?}", args.algo);
        return usage();
    }
    let Some(dataset) = by_name(&args.dataset) else {
        eprintln!("unknown dataset {:?}", args.dataset);
        return usage();
    };
    if args.n < 2 {
        eprintln!("--n must be at least 2");
        return ExitCode::FAILURE;
    }
    let metric = dataset.metric(args.n, args.seed);
    let landmarks = args.landmarks.unwrap_or_else(|| log_landmarks(args.n));

    // Install the fault/retry/budget/corruption knobs on every oracle the
    // runner builds (bootstrap included — landmark calls can fault too).
    let wants_oracle_config = args.faults.is_some()
        || args.retry.is_some()
        || args.budget.is_some()
        || args.corrupt.is_some()
        || args.vote.is_some()
        || args.weak.is_some();
    if wants_oracle_config {
        let retry = match args.retry {
            Some((n, base_ms)) => {
                let mut p = RetryPolicy::standard(n);
                if let Some(ms) = base_ms {
                    p.base = Duration::from_millis(ms);
                }
                p
            }
            None => RetryPolicy::none(),
        };
        set_oracle_config(OracleConfig {
            faults: args
                .faults
                .map(|(rate, seed)| FaultInjector::new(rate, seed.unwrap_or(args.seed))),
            retry,
            budget: args
                .budget
                .map_or_else(CallBudget::unlimited, CallBudget::calls),
            corrupt: args
                .corrupt
                .map(|(rate, seed)| CorruptionInjector::new(rate, seed.unwrap_or(args.seed))),
            vote: args.vote,
            weak: args
                .weak
                .map(|(rate, seed)| (rate, seed.unwrap_or(args.seed))),
            degrade: args.degrade,
        });
    }

    // Pre-load a resolved-distance cache, if any. Under `--lenient-load`
    // a partially corrupted cache still contributes its clean lines
    // (each dropped line reported with its line number) instead of
    // aborting the run.
    let mut preload: Vec<(Pair, f64)> = match &args.cache {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) if args.lenient_load => match load_known_lenient(std::io::BufReader::new(f)) {
                Ok(report) => {
                    for err in &report.errors {
                        eprintln!("[cache] {path}: {err}");
                    }
                    eprintln!(
                        "[cache] loaded {} resolved distances from {path} ({} line(s) dropped)",
                        report.loaded.len(),
                        report.skipped
                    );
                    report.loaded
                }
                Err(e) => {
                    eprintln!("[cache] {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Ok(f) => match load_known(std::io::BufReader::new(f)) {
                Ok(edges) => {
                    eprintln!(
                        "[cache] loaded {} resolved distances from {path}",
                        edges.len()
                    );
                    edges
                }
                Err(e) => {
                    eprintln!("[cache] {path}: {e} (use --lenient-load to salvage)");
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => {
                eprintln!("[cache] {path} not found; starting cold");
                Vec::new()
            }
        },
        None => Vec::new(),
    };

    // A checkpoint from a budget-killed (or completed) earlier run: its
    // manifest must describe the same problem, its pairs preload for free.
    if let Some(path) = &args.resume {
        let loaded = if args.lenient_load {
            read_checkpoint_file_lenient(std::path::Path::new(path)).map(|rec| {
                if rec.recovered {
                    eprintln!(
                        "[resume] {path}: salvaged verified prefix, {} damaged line(s) dropped",
                        rec.dropped_lines
                    );
                }
                rec.checkpoint
            })
        } else {
            read_checkpoint_file(std::path::Path::new(path))
        };
        match loaded {
            Ok(ckpt) => {
                for (key, want) in [
                    ("dataset", args.dataset.as_str()),
                    ("n", &args.n.to_string()),
                    ("seed", &args.seed.to_string()),
                ] {
                    if let Some(have) = ckpt.manifest_value(key) {
                        if have != want {
                            eprintln!(
                                "[resume] {path}: checkpoint {key}={have} but this run has \
                                 {key}={want}; refusing to mix problems"
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                }
                eprintln!(
                    "[resume] loaded {} resolved distances from {path}",
                    ckpt.known.len()
                );
                preload.extend(ckpt.known);
            }
            Err(e) => {
                let hint = if args.lenient_load {
                    ""
                } else {
                    " (use --lenient-load to salvage the verified prefix)"
                };
                eprintln!("[resume] {path}: {e}{hint}");
                return ExitCode::FAILURE;
            }
        }
    }

    let manifest: Vec<(String, String)> = [
        ("dataset", args.dataset.clone()),
        ("n", args.n.to_string()),
        ("seed", args.seed.to_string()),
        ("algo", args.algo.clone()),
        ("plug", args.plug.label().to_string()),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();

    // Observation handles: `--trace` attaches a JSONL sink plus a metrics
    // registry; `--metrics` attaches the registry alone (no sink), which
    // keeps the SPLUB query cascade enabled so its per-tier counters read
    // true. Both are shared with the run via `Rc`.
    let mut observers = RunObservers::default();
    let mut trace_sink: Option<Rc<JsonlSink>> = None;
    let mut run_metrics: Option<Rc<Metrics>> = None;
    if let Some(path) = &args.trace {
        match JsonlSink::create(path) {
            Ok(sink) => {
                let sink = Rc::new(sink);
                observers.trace = Some(Rc::<JsonlSink>::clone(&sink) as Rc<dyn TraceSink>);
                trace_sink = Some(sink);
            }
            Err(e) => {
                eprintln!("[trace] create {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.trace.is_some() || args.metrics {
        let metrics = Rc::new(Metrics::new());
        observers.metrics = Some(Rc::clone(&metrics));
        run_metrics = Some(metrics);
    }
    let run_ledger = Rc::new(RefCell::new(ProvenanceLedger::default()));
    observers.ledger = Some(Rc::clone(&run_ledger));

    let seed = args.seed;
    let run_out = {
        let algo = args.algo.clone();
        let (k, l) = (args.k, args.l);
        let checkpoint = args.checkpoint.clone();
        let manifest_for_run = manifest.clone();
        let run = move |r: &mut dyn DistanceResolver| -> Result<String, OracleError> {
            // Periodic snapshots while the algorithm runs, so a hard kill
            // (not just a budget error) still leaves a resume file.
            let mut ckpt_resolver;
            let r: &mut dyn DistanceResolver = match &checkpoint {
                Some((path, every)) => {
                    ckpt_resolver =
                        CheckpointingResolver::new(r, path.clone(), *every, manifest_for_run);
                    &mut ckpt_resolver
                }
                None => r,
            };
            match algo.as_str() {
                "prim" => {
                    let mst = try_prim_mst(r)?;
                    Ok(format!(
                        "MST weight {:.6} ({} edges)",
                        mst.total_weight,
                        mst.edges.len()
                    ))
                }
                "kruskal" => {
                    let mst = try_kruskal_mst(r)?;
                    Ok(format!(
                        "MST weight {:.6} ({} edges)",
                        mst.total_weight,
                        mst.edges.len()
                    ))
                }
                "knng" => {
                    let g = try_knn_graph(r, k)?;
                    Ok(format!("kNN graph built (k = {k}, {} nodes)", g.len()))
                }
                "pam" => {
                    let c = try_pam(
                        r,
                        PamParams {
                            l,
                            max_swaps: 50,
                            seed,
                        },
                    )?;
                    Ok(format!("PAM cost {:.6}, medoids {:?}", c.cost, c.medoids))
                }
                "clarans" => {
                    let c = try_clarans(
                        r,
                        ClaransParams {
                            l,
                            numlocal: 2,
                            maxneighbor: 150,
                            seed,
                        },
                    )?;
                    Ok(format!(
                        "CLARANS cost {:.6}, medoids {:?}",
                        c.cost, c.medoids
                    ))
                }
                "kcenter" => {
                    let s = try_k_center(r, l, 0)?;
                    Ok(format!(
                        "k-center radius {:.6}, centers {:?}",
                        s.radius, s.centers
                    ))
                }
                "tsp" => {
                    let t = try_tsp_2opt(r, 0, 50)?;
                    Ok(format!(
                        "tour length {:.6} over {} cities",
                        t.length,
                        t.order.len()
                    ))
                }
                "linkage" => {
                    let d = try_single_linkage(r)?;
                    let top = d.merges.last().map(|m| m.height).unwrap_or(0.0);
                    Ok(format!(
                        "dendrogram: {} merges, top height {:.6}",
                        d.merges.len(),
                        top
                    ))
                }
                "complete-linkage" => {
                    let d = try_complete_linkage(r)?;
                    let top = d.merges.last().map(|m| m.height).unwrap_or(0.0);
                    Ok(format!(
                        "complete-linkage dendrogram: {} merges, top height {:.6}",
                        d.merges.len(),
                        top
                    ))
                }
                "average-linkage-cut" => {
                    // Full UPGMA dendrograms provably need all pairs (see
                    // prox_algos::average_linkage); the CLI exposes the
                    // topology-only cut where bounds actually save.
                    let labels = try_average_linkage_cut(r, l)?;
                    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
                    Ok(format!(
                        "average-linkage cut: {k} clusters over {} objects",
                        labels.len()
                    ))
                }
                other => unreachable!("validated algorithm name: {other}"),
            }
        };
        try_run_plugged_observed(
            args.plug,
            &*metric,
            landmarks,
            args.seed,
            &preload,
            args.cache.is_some() || args.checkpoint.is_some(),
            observers.clone(),
            run,
        )
    };
    let (outcome, result, resolved) = match run_out {
        Ok(t) => t,
        Err(e) => {
            // The bootstrap itself faulted or ran out of budget: there is
            // no resolver knowledge to checkpoint yet.
            eprintln!("aborted during bootstrap: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Persist everything we now know *before* printing: a reader closing
    // our stdout early (`prox-cli ... | head`) delivers SIGPIPE on the next
    // println, and the cache/checkpoint must survive that. The export runs
    // even when the algorithm aborted on a fault — that is the whole point
    // of resume.
    if let Some(path) = &args.cache {
        match std::fs::File::create(path) {
            Ok(f) => match save_known(std::io::BufWriter::new(f), resolved.iter().copied()) {
                Ok(count) => eprintln!("[cache] saved {count} resolved distances to {path}"),
                Err(e) => eprintln!("[cache] write {path}: {e}"),
            },
            Err(e) => eprintln!("[cache] create {path}: {e}"),
        }
    }
    if let Some((path, _)) = &args.checkpoint {
        match write_checkpoint_file(
            std::path::Path::new(path),
            &manifest,
            resolved.iter().copied(),
        ) {
            Ok(count) => eprintln!("[checkpoint] saved {count} resolved distances to {path}"),
            Err(e) => eprintln!("[checkpoint] write {path}: {e}"),
        }
    }
    if let Some(path) = &args.ledger {
        let text = run_ledger.borrow().to_jsonl();
        match std::fs::write(path, text) {
            Ok(()) => eprintln!("[ledger] saved provenance ledger to {path}"),
            Err(e) => eprintln!("[ledger] write {path}: {e}"),
        }
    }
    if let (Some(path), Some(sink)) = (&args.trace, &trace_sink) {
        sink.flush();
        if sink.io_errors() > 0 {
            eprintln!(
                "[trace] WARNING: {path}: {} write error(s) — events may be missing \
                 (`prox-cli report` flags the seq gaps)",
                sink.io_errors()
            );
        }
        // Consistency guarantee: the billed-call total recovered from the
        // trace must equal the oracle's own accounting, exactly.
        let verified = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| summarize(&text).map_err(|e| e.to_string()));
        match verified {
            Ok(s) if s.billed_calls == result.total_calls() => eprintln!(
                "[trace] {} events -> {path}; billed calls {} match oracle accounting",
                sink.emitted(),
                s.billed_calls
            ),
            Ok(s) => eprintln!(
                "[trace] WARNING: trace bills {} calls but the oracle accounted {}",
                s.billed_calls,
                result.total_calls()
            ),
            Err(e) => eprintln!("[trace] verify {path}: {e}"),
        }
    }
    // Metrics render: `--metrics` dumps the full registry on stdout in
    // stable sorted order (counters + histogram p50/p99); a `--trace`-only
    // run keeps the render on stderr so stdout stays the run summary.
    if let Some(m) = &run_metrics {
        if !m.is_empty() {
            if args.metrics {
                print!("{}", m.render());
            } else {
                eprint!("{}", m.render());
            }
        }
    }

    let summary = match outcome {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("aborted: {e}");
            match &args.checkpoint {
                Some((path, _)) => eprintln!(
                    "progress saved; rerun with `--resume {path}` to pay only the missing calls"
                ),
                None => eprintln!("rerun with --checkpoint FILE to make runs resumable"),
            }
            return ExitCode::FAILURE;
        }
    };

    println!("{summary}");
    println!(
        "oracle calls : {} (bootstrap {}, algorithm {})",
        result.total_calls(),
        result.bootstrap_calls,
        result.algo_calls
    );
    if let Some(m) = &run_metrics {
        let (ado, bidi, full) = (
            m.counter("splub_ado_decisive"),
            m.counter("splub_bidi_early_exit"),
            m.counter("splub_full_fallback"),
        );
        // Zero across the board means the cascade never ran (non-SPLUB
        // plug, or disabled under `--trace` for byte-identity) — omit.
        if ado + bidi + full > 0 {
            println!(
                "cascade      : {ado} ADO-decisive, {bidi} bidi early-exit, {full} full fallback"
            );
        }
    }
    if wants_oracle_config {
        let f = result.fault_stats;
        println!(
            "fault path   : {} faults injected, {} retries, {:.3?} virtual backoff",
            f.faults_injected, f.retries, f.backoff_time
        );
    }
    if args.corrupt.is_some() || args.vote.is_some() {
        let c = result.corruption;
        println!(
            "audit        : {} corruptions injected; {} detected, {} repaired, {} retracted, \
             {} re-queries billed",
            result.fault_stats.corruptions_injected,
            c.detected,
            c.repaired,
            c.retracted,
            c.requeries
        );
    }
    if args.weak.is_some() {
        let w = result.weak;
        println!(
            "weak tier    : {} resolutions ({} probes, {} errors injected); \
             {} lies caught, {} no-quorum escalations",
            w.resolutions, w.probes, w.errors_injected, w.lies_detected, w.no_quorum
        );
    }
    if let Some(d) = result.degraded {
        let r = d.report;
        println!(
            "degraded     : strong tier lost after {} calls ({}); finished on weak+bounds \
             ({} certified, {} weak-only, {} unresolved)",
            r.strong_calls_at_loss,
            d.reason.name(),
            r.certified,
            r.weak_only,
            r.unresolved
        );
    }
    println!(
        "cpu time     : {:.3?} (bootstrap {:.3?})",
        result.wall, result.bootstrap_wall
    );
    if args.oracle_cost_ms > 0 {
        let cost = Duration::from_millis(args.oracle_cost_ms);
        println!(
            "completion   : {:.3?} at {} ms/call",
            result.completion_time(cost),
            args.oracle_cost_ms
        );
    }
    println!(
        "without plug : {} calls (all pairs)",
        Pair::count(metric.len())
    );
    {
        // Where every resolved pair's value came from (invariant I11:
        // these rows sum to the billed-call and resolution totals).
        let l = run_ledger.borrow();
        if !l.is_empty() {
            print!("{}", l.render());
        }
    }
    if args.profile {
        let trace_path = args.trace.as_deref().expect("profile mode always traces");
        match std::fs::read_to_string(trace_path)
            .map_err(|e| e.to_string())
            .and_then(|text| SpanTree::from_trace(&text).map_err(|e| e.to_string()))
        {
            Ok(tree) => {
                print!("{}", tree.render());
                if let Some(out) = &args.profile_out {
                    match std::fs::write(out, tree.fold()) {
                        Ok(()) => eprintln!("[profile] collapsed stacks -> {out}"),
                        Err(e) => eprintln!("[profile] write {out}: {e}"),
                    }
                }
            }
            Err(e) => {
                eprintln!("[profile] {trace_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
