//! Figure 7: CLARANS/PAM across datasets, and completion time vs oracle
//! cost for Prim's algorithm.

use std::time::Duration;

use prox_algos::{clarans, pam, prim_mst, ClaransParams, PamParams};
use prox_datasets::{ClusteredPlane, Dataset, RandomVectors, RoadNetwork};

use crate::experiments::SEED;
use crate::runner::{log_landmarks, run_plugged, Plug};
use crate::table::{pct, secs, Table};
use crate::Scale;

fn clarans_table(id: &str, title: &str, dataset: &dyn Dataset, scale: Scale) {
    let sizes = scale.sizes(&[64, 128, 256, 512], 192);
    let params = ClaransParams {
        l: 10,
        numlocal: 2,
        maxneighbor: 100,
        seed: SEED,
    };
    let mut t = Table::new(
        id,
        title,
        &[
            "n", "vanilla", "Tri", "LAESA", "Save(%)", "TLAESA", "Save(%)",
        ],
    );
    for n in sizes {
        let metric = dataset.metric(n, SEED);
        let k = log_landmarks(n);
        let (_, vanilla) = run_plugged(Plug::Vanilla, &*metric, k, SEED, |r| clarans(r, params));
        let (_, tri) = run_plugged(Plug::TriBoot, &*metric, k, SEED, |r| clarans(r, params));
        let (_, laesa) = run_plugged(Plug::Laesa, &*metric, k, SEED, |r| clarans(r, params));
        let (_, tlaesa) = run_plugged(Plug::Tlaesa, &*metric, k, SEED, |r| clarans(r, params));
        t.row(vec![
            n.to_string(),
            vanilla.total_calls().to_string(),
            tri.total_calls().to_string(),
            laesa.total_calls().to_string(),
            pct(tri.total_calls(), laesa.total_calls()),
            tlaesa.total_calls().to_string(),
            pct(tri.total_calls(), tlaesa.total_calls()),
        ]);
    }
    t.finish();
}

/// Figure 7a: CLARANS on SF.
pub fn fig7a(scale: Scale) {
    clarans_table(
        "fig7a",
        "CLARANS (l=10) oracle calls vs size (SF)",
        &ClusteredPlane::default(),
        scale,
    );
}

/// Figure 7b: PAM on the Flickr vector stand-in.
pub fn fig7b(scale: Scale) {
    let sizes = scale.sizes(&[64, 128, 256, 512], 128);
    let dataset = RandomVectors::default();
    let mut t = Table::new(
        "fig7b",
        "PAM (l=10) oracle calls vs size (Flickr 256-d)",
        &[
            "n", "vanilla", "Tri", "LAESA", "Save(%)", "TLAESA", "Save(%)",
        ],
    );
    for n in sizes {
        let metric = dataset.metric(n, SEED);
        let k = log_landmarks(n);
        let params = PamParams {
            l: 10,
            max_swaps: 12,
            seed: SEED,
        };
        let (_, vanilla) = run_plugged(Plug::Vanilla, &*metric, k, SEED, |r| pam(r, params));
        let (_, tri) = run_plugged(Plug::TriBoot, &*metric, k, SEED, |r| pam(r, params));
        let (_, laesa) = run_plugged(Plug::Laesa, &*metric, k, SEED, |r| pam(r, params));
        let (_, tlaesa) = run_plugged(Plug::Tlaesa, &*metric, k, SEED, |r| pam(r, params));
        t.row(vec![
            n.to_string(),
            vanilla.total_calls().to_string(),
            tri.total_calls().to_string(),
            laesa.total_calls().to_string(),
            pct(tri.total_calls(), laesa.total_calls()),
            tlaesa.total_calls().to_string(),
            pct(tri.total_calls(), tlaesa.total_calls()),
        ]);
    }
    t.finish();
}

/// Figure 7c: CLARANS on UrbanGB.
pub fn fig7c(scale: Scale) {
    clarans_table(
        "fig7c",
        "CLARANS (l=10) oracle calls vs size (UrbanGB)",
        &RoadNetwork::default(),
        scale,
    );
}

/// Figure 7d: Prim's end-to-end completion time as the oracle's per-call
/// cost sweeps up to 1.2 s (virtual time model, §5.6.1).
pub fn fig7d(scale: Scale) {
    let n = match scale {
        Scale::Small => 192,
        Scale::Full => 1024,
    };
    let metric = RoadNetwork::default().metric(n, SEED);
    let k = log_landmarks(n);
    let runs = [
        ("vanilla", Plug::Vanilla),
        ("Tri", Plug::TriBoot),
        ("LAESA", Plug::Laesa),
        ("TLAESA", Plug::Tlaesa),
    ]
    .map(|(name, plug)| {
        let (_, r) = run_plugged(plug, &*metric, k, SEED, |r| prim_mst(r));
        (name, r)
    });
    let mut t = Table::new(
        "fig7d",
        "Prim completion time (s) vs oracle cost (UrbanGB)",
        &["oracle_cost_s", "vanilla", "Tri", "LAESA", "TLAESA"],
    );
    for cost_us in [10u64, 1_000, 10_000, 100_000, 1_200_000] {
        let cost = Duration::from_micros(cost_us);
        let mut row = vec![format!("{:.5}", cost.as_secs_f64())];
        for (_, r) in &runs {
            row.push(secs(r.completion_time(cost)));
        }
        t.row(row);
    }
    t.finish();
}
