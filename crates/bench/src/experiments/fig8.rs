//! Figure 8: clustering completion time vs oracle cost, and sensitivity to
//! the number of clusters `l`.

use std::time::Duration;

use prox_algos::{clarans, pam, ClaransParams, PamParams};
use prox_bounds::DistanceResolver;
use prox_datasets::{ClusteredPlane, Dataset};

use crate::experiments::SEED;
use crate::runner::{log_landmarks, run_plugged, Plug, RunResult};
use crate::table::{secs, Table};
use crate::Scale;

const PLUGS: [(&str, Plug); 4] = [
    ("vanilla", Plug::Vanilla),
    ("Tri", Plug::TriBoot),
    ("LAESA", Plug::Laesa),
    ("TLAESA", Plug::Tlaesa),
];

fn time_table(id: &str, title: &str, scale: Scale, algo: impl Fn(&mut dyn DistanceResolver)) {
    let n = match scale {
        Scale::Small => 128,
        Scale::Full => 512,
    };
    let metric = ClusteredPlane::default().metric(n, SEED);
    let k = log_landmarks(n);
    let runs: Vec<(&str, RunResult)> = PLUGS
        .iter()
        .map(|&(name, plug)| {
            let (_, r) = run_plugged(plug, &*metric, k, SEED, |r| algo(r));
            (name, r)
        })
        .collect();
    let mut t = Table::new(
        id,
        title,
        &["oracle_cost_s", "vanilla", "Tri", "LAESA", "TLAESA"],
    );
    for cost_ms in [1u64, 10, 100, 1_000, 2_500] {
        let cost = Duration::from_millis(cost_ms);
        let mut row = vec![format!("{:.3}", cost.as_secs_f64())];
        for (_, r) in &runs {
            row.push(secs(r.completion_time(cost)));
        }
        t.row(row);
    }
    t.finish();
}

/// Figure 8a: PAM completion time vs oracle cost.
pub fn fig8a(scale: Scale) {
    time_table(
        "fig8a",
        "PAM (l=10) completion time (s) vs oracle cost (SF)",
        scale,
        |r| {
            pam(
                r,
                PamParams {
                    l: 10,
                    max_swaps: 12,
                    seed: SEED,
                },
            );
        },
    );
}

/// Figure 8b: CLARANS completion time vs oracle cost.
pub fn fig8b(scale: Scale) {
    time_table(
        "fig8b",
        "CLARANS (l=10) completion time (s) vs oracle cost (SF)",
        scale,
        |r| {
            clarans(
                r,
                ClaransParams {
                    l: 10,
                    numlocal: 2,
                    maxneighbor: 100,
                    seed: SEED,
                },
            );
        },
    );
}

fn vary_l_table(id: &str, title: &str, scale: Scale, use_pam: bool) {
    let n = match scale {
        Scale::Small => 128,
        Scale::Full => 512,
    };
    let metric = ClusteredPlane::default().metric(n, SEED);
    let k = log_landmarks(n);
    let mut t = Table::new(id, title, &["l", "vanilla", "Tri", "LAESA", "TLAESA"]);
    for l in [2usize, 5, 10, 20, 40] {
        let mut row = vec![l.to_string()];
        for &(_, plug) in &PLUGS {
            let (_, r) = run_plugged(plug, &*metric, k, SEED, |r| {
                if use_pam {
                    pam(
                        r,
                        PamParams {
                            l,
                            max_swaps: 12,
                            seed: SEED,
                        },
                    );
                } else {
                    clarans(
                        r,
                        ClaransParams {
                            l,
                            numlocal: 2,
                            maxneighbor: 100,
                            seed: SEED,
                        },
                    );
                }
            });
            row.push(r.total_calls().to_string());
        }
        t.row(row);
    }
    t.finish();
}

/// Figure 8c: PAM distance calls varying `l`.
pub fn fig8c(scale: Scale) {
    vary_l_table("fig8c", "PAM oracle calls varying l (SF)", scale, true);
}

/// Figure 8d: CLARANS distance calls varying `l`.
pub fn fig8d(scale: Scale) {
    vary_l_table("fig8d", "CLARANS oracle calls varying l (SF)", scale, false);
}
