//! Figure 3: quality of bounds and bound-maintenance time.

use std::time::Instant;

use prox_bounds::{laesa_bootstrap, Adm, BoundScheme, Laesa, Splub, Tlaesa, TriScheme};
use prox_core::{Oracle, Pair};
use prox_datasets::{ClusteredPlane, Dataset};

use crate::experiments::SEED;
use crate::runner::log_landmarks;
use crate::table::Table;
use crate::Scale;

/// Deterministic sample of `count` distinct pairs over `n` objects.
fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<Pair> {
    let mut state = seed ^ 0xFA1A_57A7;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    while out.len() < count.min(Pair::count(n) as usize) {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        if a == b {
            continue;
        }
        let p = Pair::new(a, b);
        if seen.insert(p.key()) {
            out.push(p);
        }
    }
    out
}

/// Shared setup for the bound-quality panels: every scheme absorbs the same
/// landmark bootstrap plus the same random resolved edges, then is queried
/// on the same unknown pairs.
struct QualityBench {
    adm: Adm,
    splub: Splub,
    tri: TriScheme,
    laesa: Laesa,
    tlaesa: Tlaesa,
    queries: Vec<Pair>,
}

fn quality_setup(n: usize, extra_edges: usize) -> QualityBench {
    let metric = ClusteredPlane::default().metric(n, SEED);
    let oracle = Oracle::new(&*metric);
    let k = log_landmarks(n);
    let boot = laesa_bootstrap(&oracle, k, SEED);
    let laesa = Laesa::new(1.0, &boot);
    let oracle2 = Oracle::new(&*metric);
    let tlaesa = Tlaesa::build(&oracle2, k, 16, SEED);

    let mut adm = Adm::new(n, 1.0);
    let mut splub = Splub::new(n, 1.0);
    let mut tri = TriScheme::new(n, 1.0);
    let mut laesa = laesa;
    let mut tlaesa = tlaesa;

    // Common knowledge: the bootstrap rows, TLAESA's construction edges
    // (so no scheme knows strictly more than ADM — ADM's bounds must
    // dominate for the relative-error measure to be meaningful), plus
    // `extra_edges` random edges.
    let mut recorded = std::collections::HashSet::new();
    let shared: Vec<(prox_core::Pair, f64)> = boot.edges().chain(tlaesa.resolved_edges()).collect();
    for (p, d) in shared {
        if !recorded.insert(p.key()) {
            continue;
        }
        for s in [
            &mut adm as &mut dyn BoundScheme,
            &mut splub,
            &mut tri,
            &mut laesa,
            &mut tlaesa,
        ] {
            s.record(p, d);
        }
    }
    for p in sample_pairs(n, extra_edges, SEED ^ 1) {
        if !recorded.insert(p.key()) {
            continue;
        }
        let d = oracle.call_pair(p);
        for s in [
            &mut adm as &mut dyn BoundScheme,
            &mut splub,
            &mut tri,
            &mut laesa,
            &mut tlaesa,
        ] {
            s.record(p, d);
        }
    }
    let queries = sample_pairs(n, 400, SEED ^ 2)
        .into_iter()
        .filter(|p| !recorded.contains(&p.key()))
        .collect();
    QualityBench {
        adm,
        splub,
        tri,
        laesa,
        tlaesa,
        queries,
    }
}

/// Figure 3a: mean relative error of each scheme's bounds against ADM's
/// (which are tightest). SPLUB must read 0; Tri should sit well under
/// LAESA/TLAESA, especially on the upper bound.
pub fn fig3a(scale: Scale) {
    let n = match scale {
        Scale::Small => 128,
        Scale::Full => 520,
    };
    let mut b = quality_setup(n, n * 4);
    let mut t = Table::new(
        "fig3a",
        "mean relative bound error vs ADM (0 = tightest possible)",
        &["scheme", "rel_err_LB", "rel_err_UB"],
    );
    let mut acc = vec![(0.0f64, 0.0f64); 4]; // splub, tri, laesa, tlaesa
    let mut cnt = 0u32;
    for &q in &b.queries {
        let (al, au) = b.adm.bounds(q);
        let others = [
            b.splub.bounds(q),
            b.tri.bounds(q),
            b.laesa.bounds(q),
            b.tlaesa.bounds(q),
        ];
        cnt += 1;
        for (slot, (l, u)) in others.into_iter().enumerate() {
            // LB error: how far below the tightest LB; UB error: how far
            // above the tightest UB (both normalized by the ADM value).
            let le = if al > 1e-12 { (al - l) / al } else { 0.0 };
            let ue = if au > 1e-12 { (u - au) / au } else { 0.0 };
            acc[slot].0 += le;
            acc[slot].1 += ue;
        }
    }
    for (name, (le, ue)) in ["SPLUB", "Tri", "LAESA", "TLAESA"].iter().zip(acc) {
        t.row(vec![
            name.to_string(),
            format!("{:.4}", le / f64::from(cnt.max(1))),
            format!("{:.4}", ue / f64::from(cnt.max(1))),
        ]);
    }
    t.finish();
}

/// Figure 3b: Tri's LB–UB gap collapses as the known-edge set grows.
pub fn fig3b(scale: Scale) {
    let n = match scale {
        Scale::Small => 128,
        Scale::Full => 520,
    };
    let mut t = Table::new(
        "fig3b",
        "Tri Scheme mean (UB - LB) gap vs #known edges",
        &["known_edges", "mean_gap", "mean_LB", "mean_UB"],
    );
    // Tri only — no need for the full five-scheme setup here.
    let metric = ClusteredPlane::default().metric(n, SEED);
    let oracle = Oracle::new(&*metric);
    let k = log_landmarks(n);
    let boot = laesa_bootstrap(&oracle, k, SEED);
    for mult in [1usize, 2, 4, 8, 16, 32] {
        let extra = n * mult / 2;
        let mut tri = TriScheme::new(n, 1.0);
        boot.apply_to(&mut tri);
        for p in sample_pairs(n, extra, SEED ^ 1) {
            if tri.known(p).is_none() {
                tri.record(p, oracle.call_pair(p));
            }
        }
        let queries: Vec<Pair> = sample_pairs(n, 400, SEED ^ 2)
            .into_iter()
            .filter(|&p| tri.known(p).is_none())
            .collect();
        let (mut gap, mut lbs, mut ubs) = (0.0, 0.0, 0.0);
        let mut cnt = 0u32;
        for &q in &queries {
            let (l, u) = tri.bounds(q);
            gap += u - l;
            lbs += l;
            ubs += u;
            cnt += 1;
        }
        t.row(vec![
            tri.m().to_string(),
            format!("{:.4}", gap / f64::from(cnt.max(1))),
            format!("{:.4}", lbs / f64::from(cnt.max(1))),
            format!("{:.4}", ubs / f64::from(cnt.max(1))),
        ]);
    }
    t.finish();
}

/// Figure 3c: wall time to absorb the knowledge and answer the queries —
/// ADM's dense updates vs SPLUB's per-query Dijkstras vs Tri's merges.
pub fn fig3c(scale: Scale) {
    let sizes: &[usize] = match scale {
        Scale::Small => &[64, 128, 256],
        Scale::Full => &[64, 128, 256, 520, 1024],
    };
    let mut t = Table::new(
        "fig3c",
        "record+query wall time (s): ADM vs SPLUB vs Tri",
        &[
            "n",
            "edges_recorded",
            "queries",
            "ADM_ms",
            "SPLUB_ms",
            "Tri_ms",
        ],
    );
    for &n in sizes {
        let metric = ClusteredPlane::default().metric(n, SEED);
        let oracle = Oracle::new(&*metric);
        let edges: Vec<(Pair, f64)> = sample_pairs(n, n * 4, SEED ^ 3)
            .into_iter()
            .map(|p| (p, oracle.call_pair(p)))
            .collect();
        let queries = sample_pairs(n, 2000, SEED ^ 4);

        let time_scheme = |scheme: &mut dyn BoundScheme| {
            let t0 = Instant::now();
            for &(p, d) in &edges {
                scheme.record(p, d);
            }
            for &q in &queries {
                let _ = scheme.bounds(q);
            }
            t0.elapsed()
        };
        let adm_t = time_scheme(&mut Adm::new(n, 1.0));
        let splub_t = time_scheme(&mut Splub::new(n, 1.0));
        let tri_t = time_scheme(&mut TriScheme::new(n, 1.0));
        t.row(vec![
            n.to_string(),
            edges.len().to_string(),
            queries.len().to_string(),
            format!("{:.3}", adm_t.as_secs_f64() * 1e3),
            format!("{:.3}", splub_t.as_secs_f64() * 1e3),
            format!("{:.3}", tri_t.as_secs_f64() * 1e3),
        ]);
    }
    t.finish();
}
