//! Figure 9: parameter sensitivity — calls and local CPU overhead as the
//! proximity parameters (k for kNN, l for clustering) sweep.

use prox_algos::{clarans, knn_graph, pam, ClaransParams, PamParams};
use prox_datasets::{ClusteredPlane, Dataset};

use crate::experiments::SEED;
use crate::runner::{log_landmarks, run_plugged, Plug};
use crate::table::{secs, Table};
use crate::Scale;

fn size(scale: Scale) -> usize {
    match scale {
        Scale::Small => 128,
        Scale::Full => 512,
    }
}

/// Figure 9a: KNNrp distance calls grow with k; Tri stays well below the
/// landmark baselines across the sweep.
pub fn fig9a(scale: Scale) {
    let n = size(scale);
    let metric = ClusteredPlane::default().metric(n, SEED);
    let lm = log_landmarks(n);
    let mut t = Table::new(
        "fig9a",
        "KNNrp oracle calls varying k (SF)",
        &["k", "vanilla", "TS-NB", "LAESA", "TLAESA"],
    );
    for k in [1usize, 5, 10, 15, 20, 25] {
        let mut row = vec![k.to_string()];
        for plug in [Plug::Vanilla, Plug::TriNb, Plug::Laesa, Plug::Tlaesa] {
            let (_, r) = run_plugged(plug, &*metric, lm, SEED, |r| knn_graph(r, k));
            row.push(r.total_calls().to_string());
        }
        t.row(row);
    }
    t.finish();
}

/// Figure 9b: PAM local CPU overhead (measured wall time with a zero-cost
/// oracle — all of it is bound bookkeeping) varying `l`.
pub fn fig9b(scale: Scale) {
    let n = size(scale);
    let metric = ClusteredPlane::default().metric(n, SEED);
    let lm = log_landmarks(n);
    let mut t = Table::new(
        "fig9b",
        "PAM CPU overhead (s) varying l (SF)",
        &["l", "vanilla", "Tri", "LAESA", "TLAESA"],
    );
    for l in [2usize, 5, 10, 20, 40] {
        let mut row = vec![l.to_string()];
        for plug in [Plug::Vanilla, Plug::TriBoot, Plug::Laesa, Plug::Tlaesa] {
            let (_, r) = run_plugged(plug, &*metric, lm, SEED, |r| {
                pam(
                    r,
                    PamParams {
                        l,
                        max_swaps: 12,
                        seed: SEED,
                    },
                );
            });
            row.push(secs(r.wall + r.bootstrap_wall));
        }
        t.row(row);
    }
    t.finish();
}

/// Figure 9c: CLARANS CPU overhead varying `l`.
pub fn fig9c(scale: Scale) {
    let n = size(scale);
    let metric = ClusteredPlane::default().metric(n, SEED);
    let lm = log_landmarks(n);
    let mut t = Table::new(
        "fig9c",
        "CLARANS CPU overhead (s) varying l (SF)",
        &["l", "vanilla", "Tri", "LAESA", "TLAESA"],
    );
    for l in [2usize, 5, 10, 20, 40] {
        let mut row = vec![l.to_string()];
        for plug in [Plug::Vanilla, Plug::TriBoot, Plug::Laesa, Plug::Tlaesa] {
            let (_, r) = run_plugged(plug, &*metric, lm, SEED, |r| {
                clarans(
                    r,
                    ClaransParams {
                        l,
                        numlocal: 2,
                        maxneighbor: 100,
                        seed: SEED,
                    },
                );
            });
            row.push(secs(r.wall + r.bootstrap_wall));
        }
        t.row(row);
    }
    t.finish();
}

/// Figure 9d: KNNrp CPU overhead varying `k`.
pub fn fig9d(scale: Scale) {
    let n = size(scale);
    let metric = ClusteredPlane::default().metric(n, SEED);
    let lm = log_landmarks(n);
    let mut t = Table::new(
        "fig9d",
        "KNNrp CPU overhead (s) varying k (SF)",
        &["k", "vanilla", "TS-NB", "LAESA", "TLAESA"],
    );
    for k in [1usize, 5, 10, 15, 20, 25] {
        let mut row = vec![k.to_string()];
        for plug in [Plug::Vanilla, Plug::TriNb, Plug::Laesa, Plug::Tlaesa] {
            let (_, r) = run_plugged(plug, &*metric, lm, SEED, |r| {
                knn_graph(r, k);
            });
            row.push(secs(r.wall + r.bootstrap_wall));
        }
        t.row(row);
    }
    t.finish();
}
