//! Tables 2 and 3: Prim's oracle calls across plug-ins, varying size.

use prox_algos::prim_mst;
use prox_core::Pair;
use prox_datasets::{ClusteredPlane, Dataset, RoadNetwork};

use crate::experiments::SEED;
use crate::runner::{log_landmarks, run_plugged, Plug};
use crate::table::{pct, Table};
use crate::Scale;

/// The paper's size ladder expressed in objects; the tables label rows by
/// `C(n, 2)` edges (2016 ⇒ n = 64, 8128 ⇒ n = 128, …).
const LADDER: &[usize] = &[64, 128, 256, 512, 1024, 2000];
const CAP_SMALL: usize = 256;

fn prim_table(id: &str, title: &str, dataset: &dyn Dataset, scale: Scale) {
    let mut t = Table::new(
        id,
        title,
        &[
            "edges",
            "WithoutPlug",
            "TS-NB",
            "Bootstrap",
            "TriScheme",
            "LAESA",
            "Save(%)",
            "TLAESA",
            "Save(%)",
            "k",
        ],
    );
    for n in scale.sizes(LADDER, CAP_SMALL) {
        let metric = dataset.metric(n, SEED);
        let k = log_landmarks(n);

        let (_, ts_nb) = run_plugged(Plug::TriNb, &*metric, k, SEED, |r| prim_mst(r));
        let (_, tri) = run_plugged(Plug::TriBoot, &*metric, k, SEED, |r| prim_mst(r));
        let (_, laesa) = run_plugged(Plug::Laesa, &*metric, k, SEED, |r| prim_mst(r));
        let (_, tlaesa) = run_plugged(Plug::Tlaesa, &*metric, k, SEED, |r| prim_mst(r));

        t.row(vec![
            Pair::count(n).to_string(),
            Pair::count(n).to_string(), // vanilla Prim resolves every pair
            ts_nb.total_calls().to_string(),
            tri.bootstrap_calls.to_string(),
            tri.total_calls().to_string(),
            laesa.total_calls().to_string(),
            pct(tri.total_calls(), laesa.total_calls()),
            tlaesa.total_calls().to_string(),
            pct(tri.total_calls(), tlaesa.total_calls()),
            k.to_string(),
        ]);
    }
    t.finish();
}

/// Table 2: UrbanGB (road-network metric).
pub fn table2(scale: Scale) {
    prim_table(
        "table2",
        "Prim's oracle calls, UrbanGB stand-in (road network)",
        &RoadNetwork::default(),
        scale,
    );
}

/// Table 3: SF (clustered plane, L1).
pub fn table3(scale: Scale) {
    prim_table(
        "table3",
        "Prim's oracle calls, SF stand-in (clustered L1 plane)",
        &ClusteredPlane::default(),
        scale,
    );
}
