//! Extension experiments beyond the paper's evaluation.

use std::time::Instant;

use prox_algos::{knn_query, BoundResolver};
use prox_bounds::TriScheme;
use prox_core::{Oracle, Pair};
use prox_datasets::{ClusteredPlane, Dataset};
use prox_index::{Gnat, MTree, VpTree};

use crate::experiments::SEED;
use crate::table::Table;
use crate::Scale;

/// `ext-index`: specialized metric indexes (related work §6.1) vs the
/// resolver framework on a kNN workload — construction investment, per-query
/// calls, and the break-even point.
///
/// The paper's argument is architectural: indexes answer *search* queries
/// only and sink their construction calls up front; the framework spends
/// calls where the running algorithm needs them and generalizes to MST,
/// clustering, TSP, … This experiment puts numbers on the trade.
pub fn ext_index(scale: Scale) {
    let n = match scale {
        Scale::Small => 256,
        Scale::Full => 1024,
    };
    let k = 5;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let queries: Vec<u32> = (0..n as u32).step_by(4).collect();

    let mut t = Table::new(
        "ext-index",
        "kNN surfaces: construction calls, query calls, wall time",
        &["surface", "construction", "query_calls", "total", "wall_s"],
    );

    // VP-tree.
    {
        let oracle = Oracle::new(&*metric);
        let t0 = Instant::now();
        let tree = VpTree::build(&oracle);
        let build = oracle.calls();
        for &q in &queries {
            let _ = tree.knn(&oracle, q, k);
        }
        t.row(vec![
            "vptree".into(),
            build.to_string(),
            (oracle.calls() - build).to_string(),
            oracle.calls().to_string(),
            format!("{:.3}", t0.elapsed().as_secs_f64()),
        ]);
    }
    // M-tree.
    {
        let oracle = Oracle::new(&*metric);
        let t0 = Instant::now();
        let tree = MTree::build(&oracle, 8);
        let build = oracle.calls();
        for &q in &queries {
            let _ = tree.knn(&oracle, q, k);
        }
        t.row(vec![
            "mtree".into(),
            build.to_string(),
            (oracle.calls() - build).to_string(),
            oracle.calls().to_string(),
            format!("{:.3}", t0.elapsed().as_secs_f64()),
        ]);
    }
    // GNAT (range-only index: drive its range search as a kNN substitute is
    // not apples-to-apples, so report construction + a fixed-radius sweep).
    {
        let oracle = Oracle::new(&*metric);
        let t0 = Instant::now();
        let tree = Gnat::build(&oracle, 6, 8);
        let build = oracle.calls();
        for &q in &queries {
            let _ = tree.range(&oracle, q, 0.05);
        }
        t.row(vec![
            "gnat(range r=.05)".into(),
            build.to_string(),
            (oracle.calls() - build).to_string(),
            oracle.calls().to_string(),
            format!("{:.3}", t0.elapsed().as_secs_f64()),
        ]);
    }
    // Framework: Tri Scheme, no bootstrap — knowledge accumulates across
    // queries instead of being bought up front.
    {
        let oracle = Oracle::new(&*metric);
        let t0 = Instant::now();
        let mut r = BoundResolver::new(&oracle, TriScheme::new(n, 1.0));
        for &q in &queries {
            let _ = knn_query(&mut r, q, k);
        }
        t.row(vec![
            "framework(Tri)".into(),
            "0".into(),
            oracle.calls().to_string(),
            oracle.calls().to_string(),
            format!("{:.3}", t0.elapsed().as_secs_f64()),
        ]);
    }
    // Brute force reference.
    t.row(vec![
        "brute-force".into(),
        "0".into(),
        (queries.len() as u64 * (n as u64 - 1)).to_string(),
        (queries.len() as u64 * (n as u64 - 1)).to_string(),
        "-".into(),
    ]);
    let _ = Pair::count(n);
    t.finish();
}
