//! Figure 6: distance saves inside Kruskal, KNNrp, and PAM, varying size.
//!
//! These panels evaluate a grid of independent `(size, plug)` cells; the
//! grid runs through [`parallel_cells`] so `--threads N` spreads the cells
//! over the pool. Every cell owns its oracle, so the reported call counts
//! are identical at any thread count.

use prox_algos::{knn_graph, kruskal_mst, pam, PamParams};
use prox_core::Pair;
use prox_datasets::{ClusteredPlane, Dataset, RoadNetwork};

use crate::experiments::SEED;
use crate::runner::{log_landmarks, parallel_cells, run_plugged, Plug, RunResult};
use crate::table::{pct, Table};
use crate::Scale;

/// Figure 6a: Kruskal on UrbanGB — Tri's save-% grows with size.
pub fn fig6a(scale: Scale) {
    let sizes = scale.sizes(&[64, 128, 256, 512, 1024], 256);
    let mut t = Table::new(
        "fig6a",
        "Kruskal's oracle calls vs size (UrbanGB)",
        &[
            "edges",
            "WithoutPlug",
            "Tri",
            "LAESA",
            "Save(%)",
            "TLAESA",
            "Save(%)",
        ],
    );
    const PLUGS: [Plug; 3] = [Plug::TriBoot, Plug::Laesa, Plug::Tlaesa];
    let metrics: Vec<_> = sizes
        .iter()
        .map(|&n| RoadNetwork::default().metric(n, SEED))
        .collect();
    let cells: Vec<RunResult> = parallel_cells(sizes.len() * PLUGS.len(), |c| {
        let (si, pi) = (c / PLUGS.len(), c % PLUGS.len());
        let k = log_landmarks(sizes[si]);
        run_plugged(PLUGS[pi], &*metrics[si], k, SEED, |r| kruskal_mst(r)).1
    });
    for (si, &n) in sizes.iter().enumerate() {
        let [tri, laesa, tlaesa] = &cells[si * PLUGS.len()..][..PLUGS.len()] else {
            unreachable!("cells come back one per (size, plug)");
        };
        t.row(vec![
            Pair::count(n).to_string(),
            Pair::count(n).to_string(),
            tri.total_calls().to_string(),
            laesa.total_calls().to_string(),
            pct(tri.total_calls(), laesa.total_calls()),
            tlaesa.total_calls().to_string(),
            pct(tri.total_calls(), tlaesa.total_calls()),
        ]);
    }
    t.finish();
}

/// Figure 6b: KNNrp — Tri's call counts track SPLUB's closely (the paper:
/// "Tri Scheme bounds match SPLUB bounds") and beat the landmark baselines.
pub fn fig6b(scale: Scale) {
    let sizes = scale.sizes(&[64, 128, 256, 512], 192);
    let k_nn = 5;
    let mut t = Table::new(
        "fig6b",
        "KNNrp (k=5) oracle calls vs size (UrbanGB)",
        &["edges", "WithoutPlug", "TS-NB", "SPLUB", "LAESA", "TLAESA"],
    );
    const PLUGS: [Plug; 4] = [Plug::TriNb, Plug::Splub, Plug::Laesa, Plug::Tlaesa];
    let metrics: Vec<_> = sizes
        .iter()
        .map(|&n| RoadNetwork::default().metric(n, SEED))
        .collect();
    let cells: Vec<RunResult> = parallel_cells(sizes.len() * PLUGS.len(), |c| {
        let (si, pi) = (c / PLUGS.len(), c % PLUGS.len());
        let k = log_landmarks(sizes[si]);
        run_plugged(PLUGS[pi], &*metrics[si], k, SEED, |r| knn_graph(r, k_nn)).1
    });
    for (si, &n) in sizes.iter().enumerate() {
        let [tri, splub, laesa, tlaesa] = &cells[si * PLUGS.len()..][..PLUGS.len()] else {
            unreachable!("cells come back one per (size, plug)");
        };
        t.row(vec![
            Pair::count(n).to_string(),
            Pair::count(n).to_string(),
            tri.total_calls().to_string(),
            splub.total_calls().to_string(),
            laesa.total_calls().to_string(),
            tlaesa.total_calls().to_string(),
        ]);
    }
    t.finish();
}

fn pam_table(id: &str, title: &str, dataset: &dyn Dataset, scale: Scale) {
    let sizes = scale.sizes(&[64, 128, 256, 512], 128);
    let params = |_n: usize| PamParams {
        l: 10,
        max_swaps: 12,
        seed: SEED,
    };
    let mut t = Table::new(
        id,
        title,
        &[
            "n", "vanilla", "Tri", "LAESA", "Save(%)", "TLAESA", "Save(%)",
        ],
    );
    const PLUGS: [Plug; 4] = [Plug::Vanilla, Plug::TriBoot, Plug::Laesa, Plug::Tlaesa];
    let metrics: Vec<_> = sizes.iter().map(|&n| dataset.metric(n, SEED)).collect();
    let cells: Vec<RunResult> = parallel_cells(sizes.len() * PLUGS.len(), |c| {
        let (si, pi) = (c / PLUGS.len(), c % PLUGS.len());
        let n = sizes[si];
        let k = log_landmarks(n);
        run_plugged(PLUGS[pi], &*metrics[si], k, SEED, |r| pam(r, params(n))).1
    });
    for (si, &n) in sizes.iter().enumerate() {
        let [vanilla, tri, laesa, tlaesa] = &cells[si * PLUGS.len()..][..PLUGS.len()] else {
            unreachable!("cells come back one per (size, plug)");
        };
        t.row(vec![
            n.to_string(),
            vanilla.total_calls().to_string(),
            tri.total_calls().to_string(),
            laesa.total_calls().to_string(),
            pct(tri.total_calls(), laesa.total_calls()),
            tlaesa.total_calls().to_string(),
            pct(tri.total_calls(), tlaesa.total_calls()),
        ]);
    }
    t.finish();
}

/// Figure 6c: PAM on UrbanGB, varying size.
pub fn fig6c(scale: Scale) {
    pam_table(
        "fig6c",
        "PAM (l=10) oracle calls vs size (UrbanGB)",
        &RoadNetwork::default(),
        scale,
    );
}

/// Figure 6d: PAM on SF, varying size.
pub fn fig6d(scale: Scale) {
    pam_table(
        "fig6d",
        "PAM (l=10) oracle calls vs size (SF)",
        &ClusteredPlane::default(),
        scale,
    );
}
