//! Figure 6: distance saves inside Kruskal, KNNrp, and PAM, varying size.

use prox_algos::{knn_graph, kruskal_mst, pam, PamParams};
use prox_core::Pair;
use prox_datasets::{ClusteredPlane, Dataset, RoadNetwork};

use crate::experiments::SEED;
use crate::runner::{log_landmarks, run_plugged, Plug};
use crate::table::{pct, Table};
use crate::Scale;

/// Figure 6a: Kruskal on UrbanGB — Tri's save-% grows with size.
pub fn fig6a(scale: Scale) {
    let sizes = scale.sizes(&[64, 128, 256, 512, 1024], 256);
    let mut t = Table::new(
        "fig6a",
        "Kruskal's oracle calls vs size (UrbanGB)",
        &[
            "edges",
            "WithoutPlug",
            "Tri",
            "LAESA",
            "Save(%)",
            "TLAESA",
            "Save(%)",
        ],
    );
    for n in sizes {
        let metric = RoadNetwork::default().metric(n, SEED);
        let k = log_landmarks(n);
        let (_, tri) = run_plugged(Plug::TriBoot, &*metric, k, SEED, |r| kruskal_mst(r));
        let (_, laesa) = run_plugged(Plug::Laesa, &*metric, k, SEED, |r| kruskal_mst(r));
        let (_, tlaesa) = run_plugged(Plug::Tlaesa, &*metric, k, SEED, |r| kruskal_mst(r));
        t.row(vec![
            Pair::count(n).to_string(),
            Pair::count(n).to_string(),
            tri.total_calls().to_string(),
            laesa.total_calls().to_string(),
            pct(tri.total_calls(), laesa.total_calls()),
            tlaesa.total_calls().to_string(),
            pct(tri.total_calls(), tlaesa.total_calls()),
        ]);
    }
    t.finish();
}

/// Figure 6b: KNNrp — Tri's call counts track SPLUB's closely (the paper:
/// "Tri Scheme bounds match SPLUB bounds") and beat the landmark baselines.
pub fn fig6b(scale: Scale) {
    let sizes = scale.sizes(&[64, 128, 256, 512], 192);
    let k_nn = 5;
    let mut t = Table::new(
        "fig6b",
        "KNNrp (k=5) oracle calls vs size (UrbanGB)",
        &["edges", "WithoutPlug", "TS-NB", "SPLUB", "LAESA", "TLAESA"],
    );
    for n in sizes {
        let metric = RoadNetwork::default().metric(n, SEED);
        let k = log_landmarks(n);
        let (_, tri) = run_plugged(Plug::TriNb, &*metric, k, SEED, |r| knn_graph(r, k_nn));
        let (_, splub) = run_plugged(Plug::Splub, &*metric, k, SEED, |r| knn_graph(r, k_nn));
        let (_, laesa) = run_plugged(Plug::Laesa, &*metric, k, SEED, |r| knn_graph(r, k_nn));
        let (_, tlaesa) = run_plugged(Plug::Tlaesa, &*metric, k, SEED, |r| knn_graph(r, k_nn));
        t.row(vec![
            Pair::count(n).to_string(),
            Pair::count(n).to_string(),
            tri.total_calls().to_string(),
            splub.total_calls().to_string(),
            laesa.total_calls().to_string(),
            tlaesa.total_calls().to_string(),
        ]);
    }
    t.finish();
}

fn pam_table(id: &str, title: &str, dataset: &dyn Dataset, scale: Scale) {
    let sizes = scale.sizes(&[64, 128, 256, 512], 128);
    let params = |_n: usize| PamParams {
        l: 10,
        max_swaps: 12,
        seed: SEED,
    };
    let mut t = Table::new(
        id,
        title,
        &[
            "n", "vanilla", "Tri", "LAESA", "Save(%)", "TLAESA", "Save(%)",
        ],
    );
    for n in sizes {
        let metric = dataset.metric(n, SEED);
        let k = log_landmarks(n);
        let (_, vanilla) = run_plugged(Plug::Vanilla, &*metric, k, SEED, |r| pam(r, params(n)));
        let (_, tri) = run_plugged(Plug::TriBoot, &*metric, k, SEED, |r| pam(r, params(n)));
        let (_, laesa) = run_plugged(Plug::Laesa, &*metric, k, SEED, |r| pam(r, params(n)));
        let (_, tlaesa) = run_plugged(Plug::Tlaesa, &*metric, k, SEED, |r| pam(r, params(n)));
        t.row(vec![
            n.to_string(),
            vanilla.total_calls().to_string(),
            tri.total_calls().to_string(),
            laesa.total_calls().to_string(),
            pct(tri.total_calls(), laesa.total_calls()),
            tlaesa.total_calls().to_string(),
            pct(tri.total_calls(), tlaesa.total_calls()),
        ]);
    }
    t.finish();
}

/// Figure 6c: PAM on UrbanGB, varying size.
pub fn fig6c(scale: Scale) {
    pam_table(
        "fig6c",
        "PAM (l=10) oracle calls vs size (UrbanGB)",
        &RoadNetwork::default(),
        scale,
    );
}

/// Figure 6d: PAM on SF, varying size.
pub fn fig6d(scale: Scale) {
    pam_table(
        "fig6d",
        "PAM (l=10) oracle calls vs size (SF)",
        &ClusteredPlane::default(),
        scale,
    );
}
