//! One module per figure/table group; a registry maps experiment ids to
//! runners so `repro <id>` stays data-driven.

pub mod ext;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod tables;

use crate::Scale;

/// A runnable experiment.
pub struct Experiment {
    /// Identifier accepted on the command line (`table2`, `fig3a`, …).
    pub id: &'static str,
    /// What the paper shows there.
    pub title: &'static str,
    /// The runner.
    pub run: fn(Scale),
}

/// The registry, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table2",
            title: "Prim's oracle calls on UrbanGB (road network)",
            run: tables::table2,
        },
        Experiment {
            id: "table3",
            title: "Prim's oracle calls on SF (clustered plane)",
            run: tables::table3,
        },
        Experiment {
            id: "fig3a",
            title: "relative error of bounds vs ADM",
            run: fig3::fig3a,
        },
        Experiment {
            id: "fig3b",
            title: "Tri Scheme LB–UB gap vs #known edges",
            run: fig3::fig3b,
        },
        Experiment {
            id: "fig3c",
            title: "bound maintenance time: ADM vs SPLUB vs Tri",
            run: fig3::fig3c,
        },
        Experiment {
            id: "fig4a",
            title: "DFT vs ADM: Prim's distance calls (small graphs)",
            run: fig4::fig4a,
        },
        Experiment {
            id: "fig4b",
            title: "DFT vs ADM: Prim's running time (small graphs)",
            run: fig4::fig4b,
        },
        Experiment {
            id: "fig5a",
            title: "LAESA/TLAESA: fast but loose bounds",
            run: fig5::fig5a,
        },
        Experiment {
            id: "fig5b",
            title: "the #landmarks selection problem",
            run: fig5::fig5b,
        },
        Experiment {
            id: "fig6a",
            title: "Kruskal distance saves vs size (UrbanGB)",
            run: fig6::fig6a,
        },
        Experiment {
            id: "fig6b",
            title: "KNNrp distance saves; Tri matches SPLUB (UrbanGB)",
            run: fig6::fig6b,
        },
        Experiment {
            id: "fig6c",
            title: "PAM calls vs size (UrbanGB)",
            run: fig6::fig6c,
        },
        Experiment {
            id: "fig6d",
            title: "PAM calls vs size (SF)",
            run: fig6::fig6d,
        },
        Experiment {
            id: "fig7a",
            title: "CLARANS calls vs size (SF)",
            run: fig7::fig7a,
        },
        Experiment {
            id: "fig7b",
            title: "PAM calls vs size (Flickr vectors)",
            run: fig7::fig7b,
        },
        Experiment {
            id: "fig7c",
            title: "CLARANS calls vs size (UrbanGB)",
            run: fig7::fig7c,
        },
        Experiment {
            id: "fig7d",
            title: "Prim completion time vs oracle cost",
            run: fig7::fig7d,
        },
        Experiment {
            id: "fig8a",
            title: "PAM completion time vs oracle cost",
            run: fig8::fig8a,
        },
        Experiment {
            id: "fig8b",
            title: "CLARANS completion time vs oracle cost",
            run: fig8::fig8b,
        },
        Experiment {
            id: "fig8c",
            title: "PAM distance calls varying l",
            run: fig8::fig8c,
        },
        Experiment {
            id: "fig8d",
            title: "CLARANS distance calls varying l",
            run: fig8::fig8d,
        },
        Experiment {
            id: "fig9a",
            title: "KNNrp distance calls varying k",
            run: fig9::fig9a,
        },
        Experiment {
            id: "fig9b",
            title: "PAM CPU overhead varying l",
            run: fig9::fig9b,
        },
        Experiment {
            id: "fig9c",
            title: "CLARANS CPU overhead varying l",
            run: fig9::fig9c,
        },
        Experiment {
            id: "ext-index",
            title: "EXTENSION: metric indexes vs the framework on kNN",
            run: ext::ext_index,
        },
        Experiment {
            id: "fig9d",
            title: "KNNrp CPU overhead varying k",
            run: fig9::fig9d,
        },
    ]
}

/// Looks an experiment up by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

/// The workload seed shared by every experiment (reproducibility).
pub const SEED: u64 = 20210620;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_resolvable() {
        let experiments = all();
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate experiment ids");
        assert!(by_id("table2").is_some());
        assert!(by_id("fig9d").is_some());
        assert!(by_id("bogus").is_none());
        assert_eq!(
            experiments.len(),
            26,
            "2 tables + 23 figure panels + 1 extension"
        );
    }
}
