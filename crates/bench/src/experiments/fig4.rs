//! Figure 4: DFT vs ADM on small graphs (Prim's algorithm).

use prox_algos::prim_mst;
use prox_core::Pair;
use prox_datasets::{ClusteredPlane, Dataset};

use crate::experiments::SEED;
use crate::runner::{run_plugged, Plug};
use crate::table::{pct, Table};
use crate::Scale;

fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        // Edges 45, 66, 91 — the lower end of the paper's 45..496 sweep.
        Scale::Small => vec![10, 12, 14],
        // Up to 153 edges; the dense-tableau simplex makes larger sizes
        // take hours, exactly the scalability wall the paper reports.
        Scale::Full => vec![10, 12, 14, 16, 18],
    }
}

/// Figure 4a: distance calls — DFT prunes at least as much as ADM, often
/// considerably more (27–58% in the paper).
pub fn fig4a(scale: Scale) {
    let mut t = Table::new(
        "fig4a",
        "Prim's distance calls: DFT vs ADM (small graphs)",
        &[
            "edges",
            "WithoutPlug",
            "ADM",
            "ADM-1pass",
            "DFT",
            "DFT_save_vs_ADM(%)",
        ],
    );
    for n in sizes(scale) {
        let metric = ClusteredPlane::default().metric(n, SEED);
        let (_, adm) = run_plugged(Plug::Adm, &*metric, 0, SEED, |r| prim_mst(r));
        let (_, adm1) = run_plugged(Plug::AdmSinglePass, &*metric, 0, SEED, |r| prim_mst(r));
        let (_, dft) = run_plugged(Plug::Dft, &*metric, 0, SEED, |r| prim_mst(r));
        t.row(vec![
            Pair::count(n).to_string(),
            Pair::count(n).to_string(),
            adm.total_calls().to_string(),
            adm1.total_calls().to_string(),
            dft.total_calls().to_string(),
            pct(dft.total_calls(), adm.total_calls()),
        ]);
    }
    t.finish();
}

/// Figure 4b: running time (log-scale in the paper) — DFT's LP solves cost
/// orders of magnitude more CPU than ADM's matrix updates.
pub fn fig4b(scale: Scale) {
    let mut t = Table::new(
        "fig4b",
        "Prim's running time (s): DFT vs ADM (small graphs)",
        &["edges", "ADM_s", "DFT_s", "slowdown_x"],
    );
    for n in sizes(scale) {
        let metric = ClusteredPlane::default().metric(n, SEED);
        let (_, adm) = run_plugged(Plug::Adm, &*metric, 0, SEED, |r| prim_mst(r));
        let (_, dft) = run_plugged(Plug::Dft, &*metric, 0, SEED, |r| prim_mst(r));
        let slowdown = dft.wall.as_secs_f64() / adm.wall.as_secs_f64().max(1e-9);
        t.row(vec![
            Pair::count(n).to_string(),
            format!("{:.6}", adm.wall.as_secs_f64()),
            format!("{:.6}", dft.wall.as_secs_f64()),
            format!("{slowdown:.1}"),
        ]);
    }
    t.finish();
}
