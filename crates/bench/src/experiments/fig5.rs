//! Figure 5: the limitations of LAESA and TLAESA.

use std::time::Instant;

use prox_algos::prim_mst;
use prox_bounds::{laesa_bootstrap, Adm, BoundScheme, Laesa, Tlaesa, TriScheme};
use prox_core::{Oracle, Pair};
use prox_datasets::{ClusteredPlane, Dataset};

use crate::experiments::SEED;
use crate::runner::{log_landmarks, run_plugged, Plug};
use crate::table::{secs, Table};
use crate::Scale;

/// Figure 5a: LAESA/TLAESA answer bound queries fastest, but their bounds
/// are much looser than Tri's (which absorbs new knowledge).
pub fn fig5a(scale: Scale) {
    let n = match scale {
        Scale::Small => 128,
        Scale::Full => 520,
    };
    let metric = ClusteredPlane::default().metric(n, SEED);
    let oracle = Oracle::new(&*metric);
    let k = log_landmarks(n);
    let boot = laesa_bootstrap(&oracle, k, SEED);
    let mut laesa = Laesa::new(1.0, &boot);
    let oracle2 = Oracle::new(&*metric);
    let mut tlaesa = Tlaesa::build(&oracle2, k, 16, SEED);
    let mut tri = TriScheme::new(n, 1.0);
    let mut adm = Adm::new(n, 1.0);
    boot.apply_to(&mut tri);
    boot.apply_to(&mut adm);

    // Extra shared knowledge so Tri/ADM have something to chew on — and
    // TLAESA's construction edges, so ADM's bounds dominate everyone's.
    let mut extra: Vec<(Pair, f64)> = Pair::all(n)
        .step_by(17)
        .map(|p| (p, oracle.call_pair(p)))
        .collect();
    extra.extend(tlaesa.resolved_edges());
    for &(p, d) in &extra {
        tri.record(p, d);
        adm.record(p, d);
        laesa.record(p, d);
        tlaesa.record(p, d);
    }

    let queries: Vec<Pair> = Pair::all(n).step_by(7).collect();
    let mut t = Table::new(
        "fig5a",
        "bound query time vs quality (vs tightest ADM bounds)",
        &["scheme", "query_time_s", "rel_err_LB", "rel_err_UB"],
    );
    let mut adm_bounds = Vec::with_capacity(queries.len());
    for &q in &queries {
        adm_bounds.push(adm.bounds(q));
    }
    let eval = |name: &str, s: &mut dyn BoundScheme, t: &mut Table| {
        let t0 = Instant::now();
        let mut acc = (0.0f64, 0.0f64);
        for (&q, &(al, au)) in queries.iter().zip(&adm_bounds) {
            let (l, u) = s.bounds(q);
            if al > 1e-12 {
                acc.0 += (al - l) / al;
            }
            if au > 1e-12 {
                acc.1 += (u - au) / au;
            }
        }
        let dt = t0.elapsed();
        let m = queries.len() as f64;
        t.row(vec![
            name.to_string(),
            secs(dt),
            format!("{:.4}", acc.0 / m),
            format!("{:.4}", acc.1 / m),
        ]);
    };
    eval("LAESA", &mut laesa, &mut t);
    eval("TLAESA", &mut tlaesa, &mut t);
    eval("Tri", &mut tri, &mut t);
    t.finish();
}

/// Figure 5b: Prim's call count for LAESA/TLAESA as the landmark budget
/// sweeps — there is no stable optimum, while Tri (bootstrapped with the
/// default log n) just works.
pub fn fig5b(scale: Scale) {
    let n = match scale {
        Scale::Small => 192,
        Scale::Full => 512,
    };
    let metric = ClusteredPlane::default().metric(n, SEED);
    let base = log_landmarks(n);
    let mut t = Table::new(
        "fig5b",
        "Prim's total calls vs #landmarks (LAESA/TLAESA); Tri as reference",
        &["landmarks", "LAESA", "TLAESA", "Tri(log n)"],
    );
    let (_, tri) = run_plugged(Plug::TriBoot, &*metric, base, SEED, |r| prim_mst(r));
    for mult in [1usize, 2, 4, 8, 12, 16] {
        let k = (base * mult / 4).max(1);
        let (_, laesa) = run_plugged(Plug::Laesa, &*metric, k, SEED, |r| prim_mst(r));
        let (_, tlaesa) = run_plugged(Plug::Tlaesa, &*metric, k, SEED, |r| prim_mst(r));
        t.row(vec![
            k.to_string(),
            laesa.total_calls().to_string(),
            tlaesa.total_calls().to_string(),
            tri.total_calls().to_string(),
        ]);
    }
    t.finish();
}
