//! Experiment harness for the paper's evaluation (§5).
//!
//! The `repro` binary regenerates every table and figure:
//!
//! ```text
//! cargo run --release -p prox-bench --bin repro -- list
//! cargo run --release -p prox-bench --bin repro -- table2
//! cargo run --release -p prox-bench --bin repro -- all --scale small
//! ```
//!
//! Each experiment prints a table to stdout and writes the same rows as CSV
//! under `target/repro/<id>.csv`. `EXPERIMENTS.md` records the mapping to
//! the paper's numbers and the observed trends.

pub mod checkpointing;
pub mod experiments;
pub mod microbench;
pub mod runner;
pub mod table;

pub use checkpointing::CheckpointingResolver;
pub use runner::{
    clear_oracle_config, oracle_config, parallel_cells, run_plugged, set_oracle_config,
    try_run_plugged_cached, try_run_plugged_observed, OracleConfig, Plug, RunObservers, RunResult,
};
pub use table::Table;

/// Scale knob: `Small` keeps every experiment under a few seconds for CI;
/// `Full` runs the paper-shaped sizes (minutes).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    Small,
    Full,
}

impl Scale {
    /// Filters a size ladder: `Small` keeps entries `<= cap_small`.
    pub fn sizes(self, ladder: &[usize], cap_small: usize) -> Vec<usize> {
        match self {
            Scale::Small => ladder.iter().copied().filter(|&n| n <= cap_small).collect(),
            Scale::Full => ladder.to_vec(),
        }
    }
}
