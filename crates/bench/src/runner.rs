//! Shared plumbing: build a resolver for any plug-in, run an algorithm,
//! collect the accounting.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use prox_bounds::{
    try_laesa_bootstrap, Adm, AdmUpdate, AuditPolicy, BoundResolver, CascadeResolver,
    CorruptionStats, DistanceResolver, Laesa, Splub, Tlaesa, TriScheme, WeakStats,
};
use prox_core::{
    CallBudget, CorruptionInjector, Degradation, FaultInjector, FaultStats, Metric, Oracle,
    OracleError, RetryPolicy, WeakOracle,
};
use prox_lp::DftResolver;
use prox_obs::{Metrics, ProvenanceLedger, SpanGuard, TraceEvent, TraceSink};

/// The plug-in configurations the experiments compare.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Plug {
    /// No scheme: the paper's `Without Plug` column.
    Vanilla,
    /// Tri Scheme with no bootstrap (`TS-NB`).
    TriNb,
    /// Tri Scheme bootstrapped with LAESA landmarks (`Tri Scheme`).
    TriBoot,
    /// SPLUB (exact bounds, no bootstrap).
    Splub,
    /// ADM baseline (exact bounds, dense matrices, fixpoint updates).
    Adm,
    /// ADM with the historical single-pass update discipline.
    AdmSinglePass,
    /// LAESA landmark baseline.
    Laesa,
    /// TLAESA landmark + pivot-tree baseline.
    Tlaesa,
    /// Direct Feasibility Test (LP).
    Dft,
}

impl Plug {
    /// Short label used in table headers.
    pub fn label(self) -> &'static str {
        match self {
            Plug::Vanilla => "vanilla",
            Plug::TriNb => "TS-NB",
            Plug::TriBoot => "Tri",
            Plug::Splub => "SPLUB",
            Plug::Adm => "ADM",
            Plug::AdmSinglePass => "ADM-1pass",
            Plug::Laesa => "LAESA",
            Plug::Tlaesa => "TLAESA",
            Plug::Dft => "DFT",
        }
    }
}

/// Fault-tolerance configuration applied to every oracle the runner
/// builds. Set it once (e.g. from `--faults` / `--retry` / `--budget`
/// CLI flags) and every subsequent [`run_plugged_cached`] call constructs
/// its oracle with these knobs; the default injects nothing and limits
/// nothing, which preserves the oracle's zero-overhead fast path.
#[derive(Copy, Clone, Debug, Default)]
pub struct OracleConfig {
    /// Deterministic fault injection (None = clean oracle).
    pub faults: Option<FaultInjector>,
    /// Retry/backoff policy for injected faults.
    pub retry: RetryPolicy,
    /// Hard call/deadline guards.
    pub budget: CallBudget,
    /// Deterministic value corruption (None = truthful oracle). See
    /// `prox_core::CorruptionInjector` and the audit layer in
    /// `prox_bounds::audit`.
    pub corrupt: Option<CorruptionInjector>,
    /// Consistency audit `(k, n)` vote attached to every resolver the
    /// runner builds (`None` = trust the oracle; `(1, 1)` = sandwich
    /// detection only; `k >= 2` = vote-confirm every fresh resolution).
    pub vote: Option<(u32, u32)>,
    /// Weak-tier cascade `(error rate, seed)`: every resolver the runner
    /// builds is wrapped in a `CascadeResolver` over a
    /// `prox_core::WeakOracle` with these knobs (`None` = strong-only).
    pub weak: Option<(f64, u64)>,
    /// Graceful degradation: with the cascade on, terminal strong-tier
    /// losses (budget exhaustion, permanent faults) no longer abort the
    /// algorithm — it finishes on weak+bounds and reports a
    /// `Degradation`. Meaningless without `weak`.
    pub degrade: bool,
}

impl OracleConfig {
    /// True when this configuration requires resolver-level auditing
    /// (corruption injected or a vote requested).
    pub fn wants_audit(&self) -> bool {
        self.corrupt.is_some() || self.vote.is_some()
    }

    /// The audit policy this configuration implies, if any: an explicit
    /// `--vote`, or detection-only when corruption is injected without one.
    pub fn audit_policy(&self) -> Option<AuditPolicy> {
        match (self.vote, self.corrupt) {
            (Some((k, n)), _) => Some(AuditPolicy::vote(k, n)),
            (None, Some(_)) => Some(AuditPolicy::detect_only()),
            (None, None) => None,
        }
    }
}

static ORACLE_CONFIG: Mutex<Option<OracleConfig>> = Mutex::new(None);

/// Process-wide trace directory: when set, every oracle the runner builds
/// (without explicit [`RunObservers`]) writes its own numbered JSONL trace
/// file here. `Rc` sinks cannot cross threads, so the *path* is global and
/// each run constructs its own sink. The counter lives with the path so
/// switching directories restarts numbering at `run-0000`.
static TRACE_DIR: Mutex<Option<(std::path::PathBuf, u64)>> = Mutex::new(None);

/// Routes every subsequent runner-built oracle's trace to a numbered file
/// under `dir` (`None` turns tracing back off). Used by the repro harness
/// to emit per-figure traces: each figure gets its own directory.
pub fn set_trace_dir(dir: Option<std::path::PathBuf>) {
    *TRACE_DIR.lock().expect("trace dir lock") = dir.map(|d| (d, 0));
}

/// The next numbered sink under the installed trace directory, if any.
/// Creation failures are reported and disable nothing else — a broken
/// trace target must not kill the run it observes.
fn next_trace_sink() -> Option<Rc<dyn TraceSink>> {
    let mut guard = TRACE_DIR.lock().expect("trace dir lock");
    let (dir, seq) = guard.as_mut()?;
    let path = dir.join(format!("run-{seq:04}.jsonl"));
    *seq += 1;
    match prox_obs::JsonlSink::create(&path) {
        Ok(sink) => Some(Rc::new(sink)),
        Err(e) => {
            eprintln!("[trace] create {}: {e}", path.display());
            None
        }
    }
}

/// Installs the fault/retry/budget configuration used by every oracle the
/// runner builds from now on (process-wide).
pub fn set_oracle_config(config: OracleConfig) {
    *ORACLE_CONFIG.lock().expect("oracle config lock") = Some(config);
}

/// Removes any installed [`OracleConfig`]; subsequent runs get clean,
/// unlimited oracles again.
pub fn clear_oracle_config() {
    *ORACLE_CONFIG.lock().expect("oracle config lock") = None;
}

/// The currently installed [`OracleConfig`], if any.
pub fn oracle_config() -> Option<OracleConfig> {
    *ORACLE_CONFIG.lock().expect("oracle config lock")
}

/// Accounting from a single plugged run.
#[derive(Copy, Clone, Debug, Default)]
pub struct RunResult {
    /// Oracle calls consumed before the algorithm started (landmarks/tree).
    pub bootstrap_calls: u64,
    /// Oracle calls consumed by the algorithm itself.
    pub algo_calls: u64,
    /// Wall-clock time of the algorithm (excluding bootstrap).
    pub wall: Duration,
    /// Wall-clock time of the bootstrap.
    pub bootstrap_wall: Duration,
    /// Fault-path accounting (all zero for a clean oracle).
    pub fault_stats: FaultStats,
    /// Corruption-audit accounting (all zero without `--corrupt`/`--vote`).
    pub corruption: CorruptionStats,
    /// Weak-tier accounting (all zero without `--weak`).
    pub weak: WeakStats,
    /// `Some` when the strong tier was lost and the run finished degraded
    /// (`--weak` + `--degrade` only).
    pub degraded: Option<Degradation>,
}

impl RunResult {
    /// Bootstrap + algorithm calls.
    pub fn total_calls(&self) -> u64 {
        self.bootstrap_calls + self.algo_calls
    }

    /// End-to-end completion time under a virtual per-call oracle cost:
    /// measured CPU + `total_calls × cost` (the §5.6 model).
    pub fn completion_time(&self, cost_per_call: Duration) -> Duration {
        let oracle_time =
            Duration::try_from_secs_f64(cost_per_call.as_secs_f64() * self.total_calls() as f64)
                .unwrap_or(Duration::MAX);
        (self.wall + self.bootstrap_wall).saturating_add(oracle_time)
    }
}

/// Runs `algo` under the given plug and landmark budget; returns the
/// algorithm's output plus the accounting.
pub fn run_plugged<T>(
    plug: Plug,
    metric: &(dyn Metric + Send + Sync),
    landmarks: usize,
    seed: u64,
    algo: impl FnOnce(&mut dyn DistanceResolver) -> T,
) -> (T, RunResult) {
    let (out, result, _) = run_plugged_cached(plug, metric, landmarks, seed, &[], false, algo);
    (out, result)
}

/// What a cached run returns: the algorithm's output, the accounting, and
/// (when `export` is set) the resolver's certified-distance set.
pub type CachedRun<T> = (T, RunResult, Vec<(prox_core::Pair, f64)>);

/// [`run_plugged`] with a persisted-knowledge workflow: `preload` is
/// injected into the resolver before the algorithm starts (no oracle
/// calls), and when `export` is set the resolver's full certified-distance
/// set is returned for saving (see `prox_core::persist`).
pub fn run_plugged_cached<T>(
    plug: Plug,
    metric: &(dyn Metric + Send + Sync),
    landmarks: usize,
    seed: u64,
    preload: &[(prox_core::Pair, f64)],
    export: bool,
    algo: impl FnOnce(&mut dyn DistanceResolver) -> T,
) -> CachedRun<T> {
    try_run_plugged_cached(plug, metric, landmarks, seed, preload, export, algo)
        .expect("bootstrap hit a fault on the infallible path")
}

/// Fallible twin of [`run_plugged_cached`]: a fault or budget error during
/// the *bootstrap* (landmark selection, pivot tree) surfaces as `Err`
/// instead of a panic. Faults during the algorithm itself belong to the
/// closure — have it return a `Result` and `?` through the fallible
/// resolver combinators.
pub fn try_run_plugged_cached<T>(
    plug: Plug,
    metric: &(dyn Metric + Send + Sync),
    landmarks: usize,
    seed: u64,
    preload: &[(prox_core::Pair, f64)],
    export: bool,
    algo: impl FnOnce(&mut dyn DistanceResolver) -> T,
) -> Result<CachedRun<T>, OracleError> {
    try_run_plugged_observed(
        plug,
        metric,
        landmarks,
        seed,
        preload,
        export,
        RunObservers::default(),
        algo,
    )
}

/// Observation handles attached to the oracle a runner builds: a trace
/// sink and/or a metrics registry (both optional; the default observes
/// nothing and keeps the oracle's fast path). `Rc` handles cannot ride
/// the process-wide [`OracleConfig`] (it lives behind a `Mutex`), so
/// observed runs take them as an explicit argument instead.
#[derive(Clone, Default)]
pub struct RunObservers {
    /// Structured-event sink for the run's trace.
    pub trace: Option<Rc<dyn TraceSink>>,
    /// Metrics registry (`oracle.calls`, `probe.width`, ...).
    pub metrics: Option<Rc<Metrics>>,
    /// Provenance ledger: when present, the resolver's per-source
    /// resolution accounting is merged into it after the algorithm
    /// finishes (one `merge` per run, so a shared handle accumulates
    /// across runs).
    pub ledger: Option<Rc<RefCell<ProvenanceLedger>>>,
}

/// [`try_run_plugged_cached`] with observation: the oracle is built with
/// the given trace sink / metrics registry attached, and everything up to
/// the algorithm closure (landmark bootstrap, pivot-tree build, cache
/// preload) runs inside a `"bootstrap"` phase so reports can split the
/// call trajectory by phase.
#[allow(clippy::too_many_arguments)] // mirrors the cached entry plus observers
pub fn try_run_plugged_observed<T>(
    plug: Plug,
    metric: &(dyn Metric + Send + Sync),
    landmarks: usize,
    seed: u64,
    preload: &[(prox_core::Pair, f64)],
    export: bool,
    observers: RunObservers,
    algo: impl FnOnce(&mut dyn DistanceResolver) -> T,
) -> Result<CachedRun<T>, OracleError> {
    let n = metric.len();
    let cfg = oracle_config();
    let audit_policy = cfg.as_ref().and_then(OracleConfig::audit_policy);
    if audit_policy.is_some() {
        // Bootstrapped / landmark plugs call the oracle outside the
        // audited resolver (LAESA rows, pivot trees), and the DFT resolver
        // bypasses `BoundResolver` entirely — none of them can be defended
        // against a lying oracle, so refuse instead of silently producing
        // unaudited results.
        let auditable = matches!(
            plug,
            Plug::Vanilla | Plug::TriNb | Plug::Splub | Plug::Adm | Plug::AdmSinglePass
        );
        if !auditable {
            return Err(OracleError::Permanent {
                reason: "corruption auditing requires a bootstrap-free bound plug \
                         (vanilla, tri-nb, splub, or adm)",
            });
        }
    }
    let mut oracle = Oracle::new(metric);
    if let Some(cfg) = cfg {
        oracle = oracle.with_retry(cfg.retry).with_budget(cfg.budget);
        if let Some(f) = cfg.faults {
            oracle = oracle.with_faults(f);
        }
        if let Some(c) = cfg.corrupt {
            oracle = oracle.with_corruption(c);
        }
    }
    let mut observers = observers;
    if observers.trace.is_none() {
        observers.trace = next_trace_sink();
    }
    if let Some(t) = observers.trace.clone() {
        oracle = oracle.with_trace(t);
    }
    if let Some(m) = observers.metrics.clone() {
        oracle = oracle.with_metrics(m);
    }
    let oracle = oracle;
    let mut result = RunResult::default();
    let boot_phase = SpanGuard::enter(observers.trace.clone(), "bootstrap");

    macro_rules! finish_inner {
        ($resolver:expr) => {{
            let mut resolver = $resolver;
            for &(p, d) in preload {
                resolver.preload(p, d);
            }
            result.bootstrap_calls = oracle.calls();
            drop(boot_phase);
            let t = Instant::now();
            let out = algo(&mut resolver);
            result.wall = t.elapsed();
            result.algo_calls = oracle.calls() - result.bootstrap_calls;
            result.fault_stats = oracle.fault_stats();
            result.corruption = resolver.corruption_stats();
            result.weak = resolver.weak_stats();
            result.degraded = resolver.degradation();
            let ledger = resolver.provenance();
            if let Some(t) = observers.trace.as_ref() {
                for (kind, scheme, tier, count) in ledger.rows() {
                    t.emit(TraceEvent::Provenance {
                        kind,
                        scheme,
                        tier,
                        count,
                    });
                }
            }
            if let Some(l) = observers.ledger.as_ref() {
                l.borrow_mut().merge(&ledger);
            }
            let mut exported = Vec::new();
            if export {
                resolver.export_known(&mut exported);
            }
            Ok((out, result, exported))
        }};
    }

    // Wraps the plug's resolver in the weak/strong cascade when `--weak`
    // is configured. A macro (not a function) because the two arms have
    // different resolver types; exactly one arm expands per call site at
    // runtime, so moving `algo`/`boot_phase` into both is fine.
    let weak_cfg = cfg.as_ref().and_then(|c| c.weak);
    let degrade = cfg.as_ref().is_some_and(|c| c.degrade);
    macro_rules! finish {
        ($resolver:expr) => {{
            match weak_cfg {
                Some((rate, wseed)) => finish_inner!(CascadeResolver::new(
                    $resolver,
                    WeakOracle::new(metric, rate, wseed)
                )
                .with_degrade(degrade)),
                None => finish_inner!($resolver),
            }
        }};
    }

    // Attaches the configured audit policy to a `BoundResolver`; a no-op
    // expression wrapper when auditing is off.
    macro_rules! audited {
        ($r:expr) => {{
            match audit_policy {
                Some(p) => $r.with_audit(p),
                None => $r,
            }
        }};
    }

    let boot_t = Instant::now();
    match plug {
        Plug::Vanilla => {
            result.bootstrap_wall = boot_t.elapsed();
            finish!(audited!(BoundResolver::vanilla(&oracle)))
        }
        Plug::TriNb => {
            result.bootstrap_wall = boot_t.elapsed();
            finish!(audited!(BoundResolver::new(
                &oracle,
                TriScheme::new(n, 1.0)
            )))
        }
        Plug::TriBoot => {
            let boot = try_laesa_bootstrap(&oracle, landmarks, seed)?;
            let mut scheme = TriScheme::new(n, 1.0);
            boot.apply_to(&mut scheme);
            result.bootstrap_wall = boot_t.elapsed();
            finish!(BoundResolver::new(&oracle, scheme))
        }
        Plug::Splub => {
            result.bootstrap_wall = boot_t.elapsed();
            finish!(audited!(BoundResolver::new(&oracle, Splub::new(n, 1.0))))
        }
        Plug::Adm => {
            result.bootstrap_wall = boot_t.elapsed();
            finish!(audited!(BoundResolver::new(&oracle, Adm::new(n, 1.0))))
        }
        Plug::AdmSinglePass => {
            result.bootstrap_wall = boot_t.elapsed();
            finish!(audited!(BoundResolver::new(
                &oracle,
                Adm::with_update(n, 1.0, AdmUpdate::SinglePass)
            )))
        }
        Plug::Laesa => {
            let boot = try_laesa_bootstrap(&oracle, landmarks, seed)?;
            let scheme = Laesa::new(1.0, &boot);
            result.bootstrap_wall = boot_t.elapsed();
            finish!(BoundResolver::new(&oracle, scheme))
        }
        Plug::Tlaesa => {
            let scheme = Tlaesa::try_build(&oracle, landmarks, 16, seed)?;
            result.bootstrap_wall = boot_t.elapsed();
            finish!(BoundResolver::new(&oracle, scheme))
        }
        Plug::Dft => {
            result.bootstrap_wall = boot_t.elapsed();
            finish!(DftResolver::new(&oracle))
        }
    }
}

/// `⌈log2 n⌉`, the paper's default landmark budget.
pub fn log_landmarks(n: usize) -> usize {
    (n.max(2) as f64).log2().ceil() as usize
}

/// Runs `count` independent experiment cells on the global thread pool and
/// returns their results in index order.
///
/// Each cell owns its oracle, scheme, and resolver, so per-cell accounting
/// (oracle calls, prune stats, outputs) is identical to running the cells
/// in a plain loop — concurrency only changes wall-clock. Cells must not
/// share mutable state; everything they need goes in by index.
pub fn parallel_cells<T: Send, F: Fn(usize) -> T + Sync>(count: usize, cell: F) -> Vec<T> {
    prox_exec::ExecPool::global().map_indexed(count, cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_algos::prim_mst;
    use prox_datasets::{ClusteredPlane, Dataset};

    #[test]
    fn accounting_splits_bootstrap_from_algo() {
        let metric = ClusteredPlane::default().metric(40, 3);
        let (_, vanilla) = run_plugged(Plug::Vanilla, &*metric, 0, 3, |r| prim_mst(r));
        assert_eq!(vanilla.bootstrap_calls, 0);
        assert_eq!(vanilla.algo_calls, prox_core::Pair::count(40));

        let (_, boot) = run_plugged(Plug::TriBoot, &*metric, 5, 3, |r| prim_mst(r));
        assert!(boot.bootstrap_calls > 0);
        assert!(boot.total_calls() < vanilla.total_calls());
    }

    #[test]
    fn completion_time_adds_virtual_cost() {
        let r = RunResult {
            bootstrap_calls: 10,
            algo_calls: 90,
            wall: Duration::from_millis(5),
            bootstrap_wall: Duration::from_millis(1),
            ..RunResult::default()
        };
        let t = r.completion_time(Duration::from_millis(10));
        assert_eq!(t, Duration::from_millis(5 + 1 + 1000));
    }

    #[test]
    fn parallel_cells_ordered_and_deterministic() {
        let metric = ClusteredPlane::default().metric(30, 3);
        let plugs = [Plug::Vanilla, Plug::TriNb, Plug::Splub, Plug::Laesa];
        let cell = |i: usize| {
            run_plugged(plugs[i], &*metric, 4, 3, |r| prim_mst(r))
                .1
                .total_calls()
        };
        let seq: Vec<u64> = (0..plugs.len()).map(cell).collect();
        // Concurrent cells, global pool widened for the duration.
        prox_exec::set_global_threads(4);
        let par = parallel_cells(plugs.len(), cell);
        prox_exec::set_global_threads(1);
        assert_eq!(seq, par, "cells must come back in order with equal counts");
    }

    #[test]
    fn all_plugs_run_prim() {
        let metric = ClusteredPlane::default().metric(12, 9);
        let mut weights = Vec::new();
        for plug in [
            Plug::Vanilla,
            Plug::TriNb,
            Plug::TriBoot,
            Plug::Splub,
            Plug::Adm,
            Plug::Laesa,
            Plug::Tlaesa,
            Plug::Dft,
        ] {
            let (mst, _) = run_plugged(plug, &*metric, 3, 1, |r| prim_mst(r));
            weights.push(mst.total_weight);
        }
        for w in &weights[1..] {
            assert!((w - weights[0]).abs() < 1e-12, "all plugs same MST weight");
        }
    }
}
