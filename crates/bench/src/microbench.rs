//! A dependency-free micro-benchmark harness.
//!
//! The workspace builds in hermetic environments, so the benches cannot pull
//! in `criterion`. This harness covers what the paper's micro views need:
//! warmed-up, multi-sample wall-clock timing with a median/mean/min summary
//! per benchmark, a substring filter from the command line, and
//! machine-readable CSV next to the human table.
//!
//! ```text
//! cargo bench -p prox-bench --bench schemes -- tri
//! ```

use std::time::{Duration, Instant};

/// One measured benchmark.
struct Row {
    name: String,
    samples: Vec<f64>, // ns per iteration
    iters_per_sample: u64,
}

/// Collects benchmarks and prints a summary table on [`Bench::finish`].
pub struct Bench {
    filter: Option<String>,
    sample_size: usize,
    /// Minimum measured wall time per sample; iterations adapt to reach it.
    min_sample_time: Duration,
    rows: Vec<Row>,
    /// When set, [`Bench::finish`] also writes `BENCH_<name>.json` at the
    /// workspace root — the committed baseline CI diffs against.
    name: Option<String>,
}

impl Default for Bench {
    fn default() -> Self {
        Bench::new()
    }
}

impl Bench {
    /// A harness configured from the command line: any non-flag argument is
    /// a substring filter on benchmark names (criterion's convention).
    pub fn new() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Bench {
            filter,
            sample_size: 20,
            min_sample_time: Duration::from_millis(5),
            rows: Vec::new(),
            name: None,
        }
    }

    /// [`Bench::new`], additionally writing a machine-readable
    /// `BENCH_<name>.json` summary at the workspace root on finish.
    pub fn named(name: &str) -> Self {
        let mut b = Bench::new();
        b.name = Some(name.to_string());
        b
    }

    /// Samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Measures `f`, attributing the result to `group/id`.
    pub fn bench(&mut self, group: &str, id: &str, mut f: impl FnMut()) {
        let name = format!("{group}/{id}");
        if let Some(pat) = &self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        // Warm up and size the per-sample iteration count so one sample
        // spans at least `min_sample_time`.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t.elapsed();
            if elapsed >= self.min_sample_time || iters >= 1 << 20 {
                break;
            }
            // Grow geometrically toward the budget.
            let scale = (self.min_sample_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .ceil()
                .clamp(2.0, 16.0);
            iters = iters.saturating_mul(scale as u64);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.rows.push(Row {
            name,
            samples,
            iters_per_sample: iters,
        });
    }

    /// Prints the summary table (and CSV under `target/microbench/`) and
    /// consumes the harness.
    pub fn finish(self) {
        if self.rows.is_empty() {
            println!("no benchmarks matched the filter");
            return;
        }
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>8}",
            "benchmark", "median", "mean", "min", "iters"
        );
        let mut csv = String::from("benchmark,median_ns,mean_ns,min_ns,iters\n");
        for row in &self.rows {
            let median = row.samples[row.samples.len() / 2];
            let mean = row.samples.iter().sum::<f64>() / row.samples.len() as f64;
            let min = row.samples[0];
            println!(
                "{:<44} {:>12} {:>12} {:>12} {:>8}",
                row.name,
                fmt_ns(median),
                fmt_ns(mean),
                fmt_ns(min),
                row.iters_per_sample
            );
            csv.push_str(&format!(
                "{},{:.1},{:.1},{:.1},{}\n",
                row.name, median, mean, min, row.iters_per_sample
            ));
        }
        let dir = std::path::Path::new("target").join("microbench");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join("results.csv"), csv);
        }
        if let Some(name) = &self.name {
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..");
            let _ = std::fs::write(root.join(format!("BENCH_{name}.json")), self.to_json());
        }
    }

    /// The rows as a JSON array (names are `group/id` ASCII; quotes and
    /// backslashes are escaped just in case).
    fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            let median = row.samples[row.samples.len() / 2];
            let mean = row.samples.iter().sum::<f64>() / row.samples.len() as f64;
            let min = row.samples[0];
            let name = row.name.replace('\\', "\\\\").replace('"', "\\\"");
            out.push_str(&format!(
                "  {{\"name\": \"{name}\", \"median_ns\": {median:.1}, \
                 \"mean_ns\": {mean:.1}, \"min_ns\": {min:.1}, \"iters\": {}}}{}\n",
                row.iters_per_sample,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut b = Bench {
            filter: None,
            sample_size: 3,
            min_sample_time: Duration::from_micros(50),
            rows: Vec::new(),
            name: None,
        };
        let mut acc = 0u64;
        b.bench("smoke", "add", || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert_eq!(b.rows.len(), 1);
        assert!(b.rows[0].samples.iter().all(|&s| s > 0.0));
        b.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = Bench {
            filter: Some("wanted".into()),
            sample_size: 3,
            min_sample_time: Duration::from_micros(10),
            rows: Vec::new(),
            name: None,
        };
        b.bench("other", "bench", || {});
        assert!(b.rows.is_empty());
        b.bench("wanted", "bench", || {});
        assert_eq!(b.rows.len(), 1);
    }

    #[test]
    fn json_summary_shape() {
        let mut b = Bench {
            filter: None,
            sample_size: 3,
            min_sample_time: Duration::from_micros(10),
            rows: Vec::new(),
            name: Some("test".into()),
        };
        b.bench("g", "one", || {});
        b.bench("g", "two", || {});
        let json = b.to_json();
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\"name\": \"g/one\""), "{json}");
        assert!(json.contains("\"median_ns\": "), "{json}");
        assert_eq!(json.matches("\"iters\": ").count(), 2, "{json}");
        assert_eq!(json.matches("},\n").count(), 1, "one comma for two rows");
    }

    #[test]
    fn formats_scales() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
