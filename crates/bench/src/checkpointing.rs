//! A [`DistanceResolver`] wrapper that checkpoints resolved distances.
//!
//! [`CheckpointingResolver`] forwards every call to the wrapped resolver
//! and, after each successful resolution, asks its
//! [`prox_core::Checkpointer`] whether a snapshot is due (every `every`
//! newly resolved pairs). Snapshots are full [`prox_core::checkpoint`]
//! files — a `#!` manifest plus the resolver's entire certified-distance
//! set — written atomically, so a run killed at any point (including by a
//! [`prox_core::CallBudget`]) leaves a valid resume file behind.
//!
//! Resuming is the ordinary cache-preload workflow: the checkpoint file is
//! a valid `prox_core::persist` cache, so feeding it back through
//! `--resume` (or [`prox_core::load_checkpoint`]) preloads every resolved
//! pair, and the re-run pays the oracle only for pairs the killed run
//! never resolved.

use prox_bounds::DistanceResolver;
use prox_core::{Checkpointer, OracleError, Pair, PruneStats, SpecBounds};

/// Wraps a resolver with periodic checkpointing (see module docs).
pub struct CheckpointingResolver<'a> {
    inner: &'a mut dyn DistanceResolver,
    ckpt: Checkpointer,
    manifest: Vec<(String, String)>,
    /// IO errors from snapshot writes (reported, never fatal: a failed
    /// snapshot must not kill the run it exists to protect).
    io_errors: u64,
}

impl<'a> CheckpointingResolver<'a> {
    /// Wraps `inner`, snapshotting to `path` every `every` resolutions.
    /// `manifest` key/value pairs are embedded in every snapshot.
    pub fn new(
        inner: &'a mut dyn DistanceResolver,
        path: impl Into<std::path::PathBuf>,
        every: u64,
        manifest: Vec<(String, String)>,
    ) -> Self {
        let resolved = inner.prune_stats().resolved;
        let mut ckpt = Checkpointer::new(path, every);
        // Preloaded/bootstrap knowledge present before wrapping is not new
        // progress; start the cadence from the current resolution count.
        ckpt.mark_saved(resolved);
        CheckpointingResolver {
            inner,
            ckpt,
            manifest,
            io_errors: 0,
        }
    }

    fn snapshot_if_due(&mut self) {
        let resolved = self.inner.prune_stats().resolved;
        if !self.ckpt.due(resolved) {
            return;
        }
        self.force_snapshot();
    }

    /// Writes a snapshot now, regardless of cadence. Called on the periodic
    /// schedule and once more by the CLI after the run (clean or aborted).
    pub fn force_snapshot(&mut self) {
        let resolved = self.inner.prune_stats().resolved;
        let mut edges = Vec::new();
        self.inner.export_known(&mut edges);
        match self.ckpt.save_now(resolved, &self.manifest, edges) {
            Ok(_) => {
                prox_obs::emit_to(
                    self.inner.trace_sink().as_ref(),
                    prox_obs::TraceEvent::CheckpointWrite { resolved },
                );
            }
            Err(e) => {
                self.io_errors += 1;
                eprintln!("[checkpoint] write {}: {e}", self.ckpt.path().display());
            }
        }
    }

    /// Snapshots written so far.
    pub fn saves(&self) -> u64 {
        self.ckpt.saves()
    }

    /// Snapshot writes that failed with an IO error.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }
}

impl DistanceResolver for CheckpointingResolver<'_> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn max_distance(&self) -> f64 {
        self.inner.max_distance()
    }
    fn known(&self, p: Pair) -> Option<f64> {
        self.inner.known(p)
    }
    fn resolve(&mut self, p: Pair) -> f64 {
        let d = self.inner.resolve(p);
        self.snapshot_if_due();
        d
    }
    fn resolve_fallible(&mut self, p: Pair) -> Result<f64, OracleError> {
        let d = self.inner.resolve_fallible(p)?;
        self.snapshot_if_due();
        Ok(d)
    }
    fn try_less(&mut self, x: Pair, y: Pair) -> Option<bool> {
        self.inner.try_less(x, y)
    }
    fn try_less_value(&mut self, x: Pair, v: f64) -> Option<bool> {
        self.inner.try_less_value(x, v)
    }
    fn try_leq_value(&mut self, x: Pair, v: f64) -> Option<bool> {
        self.inner.try_leq_value(x, v)
    }
    fn try_less_sum2(&mut self, x: (Pair, Pair), y: (Pair, Pair)) -> Option<bool> {
        self.inner.try_less_sum2(x, y)
    }
    fn try_sum_less_value(&mut self, terms: &[Pair], v: f64) -> Option<bool> {
        self.inner.try_sum_less_value(terms, v)
    }
    fn lower_bound_hint(&mut self, x: Pair) -> f64 {
        self.inner.lower_bound_hint(x)
    }
    fn bounds_hint(&mut self, x: Pair) -> (f64, f64) {
        self.inner.bounds_hint(x)
    }
    fn preload(&mut self, p: Pair, d: f64) {
        self.inner.preload(p, d)
    }
    fn preload_weak(&mut self, p: Pair, d: f64) {
        self.inner.preload_weak(p, d)
    }
    fn provenance(&self) -> prox_obs::ProvenanceLedger {
        self.inner.provenance()
    }
    fn export_known(&self, out: &mut Vec<(Pair, f64)>) {
        self.inner.export_known(out)
    }
    fn prune_stats(&self) -> PruneStats {
        self.inner.prune_stats()
    }
    fn prune_stats_mut(&mut self) -> &mut PruneStats {
        self.inner.prune_stats_mut()
    }
    fn weak_stats(&self) -> prox_bounds::WeakStats {
        self.inner.weak_stats()
    }
    fn degradation(&self) -> Option<prox_core::Degradation> {
        self.inner.degradation()
    }
    fn generation(&self) -> u64 {
        self.inner.generation()
    }
    fn pair_stamp(&self, x: Pair) -> u64 {
        self.inner.pair_stamp(x)
    }
    fn spec(&self) -> Option<&dyn SpecBounds> {
        self.inner.spec()
    }
    fn trace_sink(&self) -> Option<std::rc::Rc<dyn prox_obs::TraceSink>> {
        self.inner.trace_sink()
    }
    fn obs_metrics(&self) -> Option<std::rc::Rc<prox_obs::Metrics>> {
        self.inner.obs_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_algos::prim_mst;
    use prox_bounds::BoundResolver;
    use prox_core::{read_checkpoint_file, FnMetric, ObjectId, Oracle};

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn snapshots_on_cadence_and_roundtrips() {
        let dir = std::env::temp_dir().join(format!("prox-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("snap.ckpt");

        let oracle = line_oracle(10);
        let mut base = BoundResolver::vanilla(&oracle);
        let manifest = vec![("algo".to_string(), "prim".to_string())];
        let mut r = CheckpointingResolver::new(&mut base, &path, 5, manifest);
        let mst = prim_mst(&mut r);
        assert!(r.saves() >= 1, "45 resolutions at cadence 5 must snapshot");
        assert_eq!(r.io_errors(), 0);
        r.force_snapshot();

        let ckpt = read_checkpoint_file(&path).expect("readable checkpoint");
        assert_eq!(ckpt.manifest_value("algo"), Some("prim"));
        assert_eq!(ckpt.known.len() as u64, oracle.calls());
        // Replaying the checkpoint pays zero oracle calls.
        let oracle2 = line_oracle(10);
        let mut replay = BoundResolver::vanilla(&oracle2);
        for &(p, d) in &ckpt.known {
            replay.preload(p, d);
        }
        let mst2 = prim_mst(&mut replay);
        assert_eq!(oracle2.calls(), 0, "fully warm resume re-pays nothing");
        assert_eq!(mst2.edge_keys(), mst.edge_keys());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn preloaded_knowledge_does_not_trigger_an_immediate_snapshot() {
        let dir = std::env::temp_dir().join(format!("prox-ckpt-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("snap.ckpt");

        let oracle = line_oracle(6);
        let mut base = BoundResolver::vanilla(&oracle);
        // Simulate bootstrap/preload knowledge before wrapping.
        for p in [Pair::new(0, 1), Pair::new(0, 2), Pair::new(0, 3)] {
            base.resolve(p);
        }
        let mut r = CheckpointingResolver::new(&mut base, &path, 2, Vec::new());
        assert_eq!(r.saves(), 0);
        r.resolve(Pair::new(1, 2));
        assert_eq!(r.saves(), 0, "one new resolution, cadence two");
        r.resolve(Pair::new(1, 3));
        assert_eq!(r.saves(), 1, "second new resolution hits the cadence");

        std::fs::remove_dir_all(&dir).ok();
    }
}
