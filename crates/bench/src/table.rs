//! Minimal aligned-table printer with CSV mirroring.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Collects rows, prints them aligned, and mirrors them to
/// `target/repro/<id>.csv`.
pub struct Table {
    id: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table for experiment `id` with the given column names.
    pub fn new(id: &str, title: &str, header: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the aligned table and writes the CSV mirror. Returns the CSV
    /// path when the write succeeded.
    pub fn finish(self) -> Option<PathBuf> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.header, &widths);
        for row in &self.rows {
            line(row, &widths);
        }

        let dir = PathBuf::from("target/repro");
        if fs::create_dir_all(&dir).is_err() {
            return None;
        }
        let path = dir.join(format!("{}.csv", self.id));
        let mut out = match fs::File::create(&path) {
            Ok(f) => f,
            Err(_) => return None,
        };
        let mut emit = |cells: &[String]| {
            let _ = writeln!(out, "{}", cells.join(","));
        };
        emit(&self.header);
        for row in &self.rows {
            emit(row);
        }
        println!("  -> {}", path.display());
        Some(path)
    }
}

/// Format helpers shared by the experiments.
pub fn pct(ours: u64, baseline: u64) -> String {
    if baseline == 0 {
        "-".into()
    } else {
        format!(
            "{:.2}",
            100.0 * (baseline as f64 - ours as f64) / baseline as f64
        )
    }
}

/// Seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_matches_paper_rows() {
        assert_eq!(pct(800_985, 2_198_589), "63.57");
        assert_eq!(pct(5, 0), "-");
        assert_eq!(pct(100, 100), "0.00");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
