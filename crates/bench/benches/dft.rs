//! DFT cost (the micro view of Fig. 4b) and the known-edge encoding
//! ablation called out in DESIGN.md.

use std::hint::black_box;

use prox_bench::microbench::Bench;
use prox_bounds::DistanceResolver;
use prox_core::{Oracle, Pair};
use prox_datasets::{ClusteredPlane, Dataset};
use prox_lp::{DftResolver, Encoding, FeasibilityProblem};

const SEED: u64 = 20210620;

/// Raw simplex feasibility on triangle-shaped systems.
fn bench_simplex(b: &mut Bench) {
    for n_vars in [10usize, 30, 60] {
        // A chained system that needs real pivoting: x0 >= 1, x_{i+1} >= x_i
        // + 1, plus a cap near the end that makes it barely feasible.
        b.bench("simplex_feasibility", &format!("chain/{n_vars}"), || {
            let mut p = FeasibilityProblem::new(n_vars);
            p.add_ge(&[(0, 1.0)], 1.0);
            for i in 0..n_vars - 1 {
                p.add_ge(&[(i + 1, 1.0), (i, -1.0)], 1.0);
            }
            p.add_le(&[(n_vars - 1, 1.0)], n_vars as f64);
            black_box(p.feasible());
        });
    }
}

/// DFT comparison queries under both encodings: substituted (vars only for
/// unknown edges) vs the paper's literal encoding (vars for every edge plus
/// equality pins). Verdicts are identical; size and speed are not.
fn bench_dft_encoding(b: &mut Bench) {
    b.sample_size(10);
    let n = 12;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let resolved: Vec<Pair> = Pair::all(n).step_by(5).collect();
    let queries: Vec<(Pair, Pair)> = vec![
        (Pair::new(0, 3), Pair::new(2, 7)),
        (Pair::new(1, 9), Pair::new(4, 6)),
        (Pair::new(5, 8), Pair::new(0, 11)),
    ];
    for (name, encoding) in [
        ("substituted", Encoding::Substituted),
        ("literal", Encoding::Literal),
    ] {
        b.bench("dft_encoding", &format!("{name}/{n}"), || {
            let oracle = Oracle::new(&*metric);
            let mut dft = DftResolver::with_encoding(&oracle, encoding);
            for &p in &resolved {
                dft.resolve(p);
            }
            for &(x, y) in &queries {
                black_box(dft.try_less(x, y));
            }
            black_box(dft.lp_solves());
        });
    }
}

fn main() {
    let mut b = Bench::new();
    bench_simplex(&mut b);
    bench_dft_encoding(&mut b);
    b.finish();
}
