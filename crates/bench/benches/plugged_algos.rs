//! End-to-end plugged algorithms at a fixed size (the micro view of the
//! tables): CPU time of the whole algorithm per plug-in, zero-cost oracle.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prox_algos::{
    average_linkage_cut, complete_linkage, knn_graph, kruskal_mst, kruskal_mst_with, prim_mst,
    single_linkage, KruskalConfig,
};
use prox_bench::runner::{log_landmarks, run_plugged, Plug};
use prox_datasets::{ClusteredPlane, Dataset, RoadNetwork};

const SEED: u64 = 20210620;

fn bench_prim(c: &mut Criterion) {
    let mut group = c.benchmark_group("prim_plugged");
    group.sample_size(10);
    let n = 128;
    let metric = RoadNetwork::default().metric(n, SEED);
    let k = log_landmarks(n);
    for plug in [Plug::Vanilla, Plug::TriBoot, Plug::Laesa, Plug::Tlaesa] {
        group.bench_function(BenchmarkId::new(plug.label(), n), |b| {
            b.iter(|| {
                let (mst, r) = run_plugged(plug, &*metric, k, SEED, |r| prim_mst(r));
                black_box((mst.total_weight, r.total_calls()))
            })
        });
    }
    group.finish();
}

fn bench_kruskal(c: &mut Criterion) {
    let mut group = c.benchmark_group("kruskal_plugged");
    group.sample_size(10);
    let n = 128;
    let metric = RoadNetwork::default().metric(n, SEED);
    let k = log_landmarks(n);
    for plug in [Plug::Vanilla, Plug::TriBoot] {
        group.bench_function(BenchmarkId::new(plug.label(), n), |b| {
            b.iter(|| {
                let (mst, r) = run_plugged(plug, &*metric, k, SEED, |r| kruskal_mst(r));
                black_box((mst.total_weight, r.total_calls()))
            })
        });
    }
    group.finish();
}

fn bench_knng(c: &mut Criterion) {
    let mut group = c.benchmark_group("knng_plugged");
    group.sample_size(10);
    let n = 128;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let k = log_landmarks(n);
    for plug in [Plug::Vanilla, Plug::TriNb, Plug::Splub] {
        group.bench_function(BenchmarkId::new(plug.label(), n), |b| {
            b.iter(|| {
                let (g, r) = run_plugged(plug, &*metric, k, SEED, |r| knn_graph(r, 5));
                black_box((g.len(), r.total_calls()))
            })
        });
    }
    group.finish();
}

/// DESIGN.md ablation: the lazy-Kruskal levers (connectivity-first discard,
/// bound refresh) measured in oracle calls and wall time.
fn bench_kruskal_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("kruskal_ablation");
    group.sample_size(10);
    let n = 128;
    let metric = RoadNetwork::default().metric(n, SEED);
    let k = log_landmarks(n);
    let configs = [
        ("both_levers", KruskalConfig::default()),
        (
            "no_connectivity_first",
            KruskalConfig {
                connectivity_first: false,
                refresh_bounds: true,
            },
        ),
        (
            "no_bound_refresh",
            KruskalConfig {
                connectivity_first: true,
                refresh_bounds: false,
            },
        ),
    ];
    for (name, config) in configs {
        group.bench_function(BenchmarkId::new(name, n), |b| {
            b.iter(|| {
                let (mst, r) = run_plugged(Plug::TriBoot, &*metric, k, SEED, |r| {
                    kruskal_mst_with(r, config)
                });
                black_box((mst.total_weight, r.total_calls()))
            })
        });
    }
    group.finish();
}

/// The linkage family under one plug: min (single) and max (complete)
/// aggregates prune inside cluster pairs; the sum aggregate only pays off
/// on the topology-only cut. CPU time here shows the certificate overhead
/// each aggregate shape buys its savings with.
fn bench_linkage_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("linkage_family");
    group.sample_size(10);
    let n = 96;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let k = log_landmarks(n);
    for plug in [Plug::Vanilla, Plug::TriNb] {
        group.bench_function(
            BenchmarkId::new(format!("single/{}", plug.label()), n),
            |b| {
                b.iter(|| {
                    let (d, r) = run_plugged(plug, &*metric, k, SEED, |r| single_linkage(r));
                    black_box((d.merges.len(), r.total_calls()))
                })
            },
        );
        group.bench_function(
            BenchmarkId::new(format!("complete/{}", plug.label()), n),
            |b| {
                b.iter(|| {
                    let (d, r) = run_plugged(plug, &*metric, k, SEED, |r| complete_linkage(r));
                    black_box((d.merges.len(), r.total_calls()))
                })
            },
        );
        group.bench_function(
            BenchmarkId::new(format!("average-cut/{}", plug.label()), n),
            |b| {
                b.iter(|| {
                    let (labels, r) =
                        run_plugged(plug, &*metric, k, SEED, |r| average_linkage_cut(r, 6));
                    black_box((labels.len(), r.total_calls()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prim,
    bench_kruskal,
    bench_knng,
    bench_kruskal_ablation,
    bench_linkage_family
);
criterion_main!(benches);
