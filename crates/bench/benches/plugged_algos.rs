//! End-to-end plugged algorithms at a fixed size (the micro view of the
//! tables): CPU time of the whole algorithm per plug-in, zero-cost oracle.

use std::hint::black_box;

use prox_algos::{
    average_linkage_cut, complete_linkage, knn_graph, kruskal_mst, kruskal_mst_with, prim_mst,
    single_linkage, KruskalConfig,
};
use prox_bench::microbench::Bench;
use prox_bench::runner::{log_landmarks, run_plugged, Plug};
use prox_datasets::{ClusteredPlane, Dataset, RoadNetwork};

const SEED: u64 = 20210620;

fn bench_prim(b: &mut Bench) {
    b.sample_size(10);
    let n = 128;
    let metric = RoadNetwork::default().metric(n, SEED);
    let k = log_landmarks(n);
    for plug in [Plug::Vanilla, Plug::TriBoot, Plug::Laesa, Plug::Tlaesa] {
        b.bench("prim_plugged", &format!("{}/{n}", plug.label()), || {
            let (mst, r) = run_plugged(plug, &*metric, k, SEED, |r| prim_mst(r));
            black_box((mst.total_weight, r.total_calls()));
        });
    }
}

fn bench_kruskal(b: &mut Bench) {
    b.sample_size(10);
    let n = 128;
    let metric = RoadNetwork::default().metric(n, SEED);
    let k = log_landmarks(n);
    for plug in [Plug::Vanilla, Plug::TriBoot] {
        b.bench("kruskal_plugged", &format!("{}/{n}", plug.label()), || {
            let (mst, r) = run_plugged(plug, &*metric, k, SEED, |r| kruskal_mst(r));
            black_box((mst.total_weight, r.total_calls()));
        });
    }
}

fn bench_knng(b: &mut Bench) {
    b.sample_size(10);
    let n = 128;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let k = log_landmarks(n);
    for plug in [Plug::Vanilla, Plug::TriNb, Plug::Splub] {
        b.bench("knng_plugged", &format!("{}/{n}", plug.label()), || {
            let (g, r) = run_plugged(plug, &*metric, k, SEED, |r| knn_graph(r, 5));
            black_box((g.len(), r.total_calls()));
        });
    }
}

/// DESIGN.md ablation: the lazy-Kruskal levers (connectivity-first discard,
/// bound refresh) measured in oracle calls and wall time.
fn bench_kruskal_ablation(b: &mut Bench) {
    b.sample_size(10);
    let n = 128;
    let metric = RoadNetwork::default().metric(n, SEED);
    let k = log_landmarks(n);
    let configs = [
        ("both_levers", KruskalConfig::default()),
        (
            "no_connectivity_first",
            KruskalConfig {
                connectivity_first: false,
                refresh_bounds: true,
            },
        ),
        (
            "no_bound_refresh",
            KruskalConfig {
                connectivity_first: true,
                refresh_bounds: false,
            },
        ),
    ];
    for (name, config) in configs {
        b.bench("kruskal_ablation", &format!("{name}/{n}"), || {
            let (mst, r) = run_plugged(Plug::TriBoot, &*metric, k, SEED, |r| {
                kruskal_mst_with(r, config)
            });
            black_box((mst.total_weight, r.total_calls()));
        });
    }
}

/// The linkage family under one plug: min (single) and max (complete)
/// aggregates prune inside cluster pairs; the sum aggregate only pays off
/// on the topology-only cut. CPU time here shows the certificate overhead
/// each aggregate shape buys its savings with.
fn bench_linkage_family(b: &mut Bench) {
    b.sample_size(10);
    let n = 96;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let k = log_landmarks(n);
    for plug in [Plug::Vanilla, Plug::TriNb] {
        b.bench(
            "linkage_family",
            &format!("single/{}/{n}", plug.label()),
            || {
                let (d, r) = run_plugged(plug, &*metric, k, SEED, |r| single_linkage(r));
                black_box((d.merges.len(), r.total_calls()));
            },
        );
        b.bench(
            "linkage_family",
            &format!("complete/{}/{n}", plug.label()),
            || {
                let (d, r) = run_plugged(plug, &*metric, k, SEED, |r| complete_linkage(r));
                black_box((d.merges.len(), r.total_calls()));
            },
        );
        b.bench(
            "linkage_family",
            &format!("average-cut/{}/{n}", plug.label()),
            || {
                let (labels, r) =
                    run_plugged(plug, &*metric, k, SEED, |r| average_linkage_cut(r, 6));
                black_box((labels.len(), r.total_calls()));
            },
        );
    }
}

fn main() {
    let mut b = Bench::new();
    bench_prim(&mut b);
    bench_kruskal(&mut b);
    bench_knng(&mut b);
    bench_kruskal_ablation(&mut b);
    bench_linkage_family(&mut b);
    b.finish();
}
