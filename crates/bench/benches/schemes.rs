//! Per-operation cost of the bound schemes (the micro view of Fig. 3c/5a).

use std::hint::black_box;

use prox_bench::microbench::Bench;
use prox_bounds::{laesa_bootstrap, Adm, BoundScheme, Laesa, Splub, Tlaesa, TriScheme};
use prox_core::{CallBudget, FaultInjector, Oracle, Pair, QueryGoal, RetryPolicy};
use prox_datasets::{ClusteredPlane, Dataset};
use prox_graph::{Dijkstra, PartialGraph};

const SEED: u64 = 20210620;

/// Pre-resolves 4·n random-ish edges into a scheme.
fn feed(scheme: &mut dyn BoundScheme, metric: &(dyn prox_core::Metric + Send + Sync), n: usize) {
    let oracle = Oracle::new(metric);
    for p in Pair::all(n).step_by((n / 8).max(1)) {
        scheme.record(p, oracle.call_pair(p));
    }
}

fn bench_queries(b: &mut Bench) {
    for n in [128usize, 256] {
        let metric = ClusteredPlane::default().metric(n, SEED);
        let queries: Vec<Pair> = Pair::all(n).step_by(13).take(256).collect();

        let mut tri = TriScheme::new(n, 1.0);
        feed(&mut tri, &*metric, n);
        b.bench("bound_query", &format!("tri/{n}"), || {
            for &q in &queries {
                black_box(tri.bounds(q));
            }
        });

        let mut splub = Splub::new(n, 1.0);
        feed(&mut splub, &*metric, n);
        b.bench("bound_query", &format!("splub/{n}"), || {
            for &q in &queries {
                black_box(splub.bounds(q));
            }
        });

        // Cascade ablation: the same queries as goal-aware threshold
        // probes. ADO/bidi-decisive answers are never memoized, so this
        // cell prices the cascade tiers themselves, not the per-generation
        // memo the plain `splub` cell settles into.
        let mut splub_cascade = Splub::new(n, 1.0);
        feed(&mut splub_cascade, &*metric, n);
        b.bench("bound_query", &format!("splub_cascade/{n}"), || {
            for &q in &queries {
                black_box(splub_cascade.bounds_for_goal(q, QueryGoal::threshold(0.25)));
            }
        });

        let mut adm = Adm::new(n, 1.0);
        feed(&mut adm, &*metric, n);
        b.bench("bound_query", &format!("adm_query/{n}"), || {
            for &q in &queries {
                black_box(adm.bounds(q));
            }
        });

        let oracle = Oracle::new(&*metric);
        let boot = laesa_bootstrap(&oracle, 8, SEED);
        let mut laesa = Laesa::new(1.0, &boot);
        b.bench("bound_query", &format!("laesa/{n}"), || {
            for &q in &queries {
                black_box(laesa.bounds(q));
            }
        });

        let oracle2 = Oracle::new(&*metric);
        let mut tlaesa = Tlaesa::build(&oracle2, 8, 16, SEED);
        b.bench("bound_query", &format!("tlaesa/{n}"), || {
            for &q in &queries {
                black_box(tlaesa.bounds(q));
            }
        });
    }
}

fn bench_updates(b: &mut Bench) {
    b.sample_size(10);
    for n in [128usize, 256] {
        let metric = ClusteredPlane::default().metric(n, SEED);
        let oracle = Oracle::new(&*metric);
        let edges: Vec<(Pair, f64)> = Pair::all(n)
            .step_by(7)
            .take(200)
            .map(|p| (p, oracle.call_pair(p)))
            .collect();

        b.bench("bound_update", &format!("tri/{n}"), || {
            let mut s = TriScheme::new(n, 1.0);
            for &(p, d) in &edges {
                s.record(p, d);
            }
            black_box(s.m());
        });
        b.bench("bound_update", &format!("splub/{n}"), || {
            let mut s = Splub::new(n, 1.0);
            for &(p, d) in &edges {
                s.record(p, d);
            }
            black_box(s.m());
        });
        b.bench("bound_update", &format!("adm/{n}"), || {
            let mut s = Adm::new(n, 1.0);
            for &(p, d) in &edges {
                s.record(p, d);
            }
            black_box(s.m());
        });
    }
}

/// DESIGN.md ablation: the sorted-`Vec` adjacency inside Tri. (The losing
/// `BTreeMap` variant was retired behind the `ablation` feature of
/// `prox-bounds` once BENCH_schemes.json showed `sorted_vec` strictly
/// winning; this cell remains as the reference point.)
fn bench_tri_adjacency(b: &mut Bench) {
    let n = 512;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let oracle = Oracle::new(&*metric);
    let edges: Vec<(Pair, f64)> = Pair::all(n)
        .step_by(23)
        .map(|p| (p, oracle.call_pair(p)))
        .collect();
    let queries: Vec<Pair> = Pair::all(n).step_by(101).collect();

    b.bench("tri_adjacency", "sorted_vec", || {
        let mut s = TriScheme::new(n, 1.0);
        for &(p, d) in &edges {
            s.record(p, d);
        }
        let mut acc = 0.0;
        for &q in &queries {
            acc += s.bounds(q).0;
        }
        black_box(acc);
    });
}

/// DESIGN.md §13 ablation: cost of resetting Dijkstra scratch between runs.
/// The scenario that motivated epoch stamping: a large object universe
/// (`n = 4096`) whose *known* subgraph is a tiny component, so the search
/// itself touches a handful of labels. `epoch` is the shipped scratch
/// (O(touched) per run); `fill` adds the O(n) `dist.fill(INFINITY)` sweep
/// the pre-epoch implementation paid before every run — the delta between
/// the cells is the retired reset cost.
fn bench_dijkstra_reset(b: &mut Bench) {
    let n = 4096usize;
    let mut g = PartialGraph::new(n);
    // A 32-node chain: the only known component.
    for v in 0..31u32 {
        g.insert(Pair::new(v, v + 1), 0.01);
    }

    let mut dij = Dijkstra::new(n);
    b.bench("dijkstra_reset", "epoch", || {
        let d = dij.run(&g, 0);
        black_box(d.get(31));
    });

    let mut dij_fill = Dijkstra::new(n);
    let mut old_style_dist = vec![f64::INFINITY; n];
    b.bench("dijkstra_reset", "fill", || {
        old_style_dist.fill(f64::INFINITY);
        black_box(old_style_dist[0]);
        let d = dij_fill.run(&g, 0);
        black_box(d.get(31));
    });
}

/// DESIGN.md §9 ablation: cost of the fault-tolerance layer on the oracle
/// hot path. `clean` is the plain oracle; `machinery_disabled` carries a
/// retry policy but no injector/budget, so it must take the same fast path
/// (the two entries should be indistinguishable); `injector_rate0` and
/// `budgeted` opt into the slow path and price the per-call schedule hash
/// and budget check.
fn bench_oracle_fault_layer(b: &mut Bench) {
    let n = 256;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let queries: Vec<Pair> = Pair::all(n).step_by(13).take(1024).collect();

    let clean = Oracle::new(&*metric);
    b.bench("oracle_fault_layer", "clean", || {
        for &q in &queries {
            black_box(clean.call_pair(q));
        }
    });

    let disabled = Oracle::new(&*metric).with_retry(RetryPolicy::standard(3));
    b.bench("oracle_fault_layer", "machinery_disabled", || {
        for &q in &queries {
            black_box(disabled.call_pair(q));
        }
    });

    let rate0 = Oracle::new(&*metric)
        .with_faults(FaultInjector::new(0.0, SEED))
        .with_retry(RetryPolicy::standard(3));
    b.bench("oracle_fault_layer", "injector_rate0", || {
        for &q in &queries {
            black_box(rate0.call_pair(q));
        }
    });

    let budgeted = Oracle::new(&*metric).with_budget(CallBudget::calls(u64::MAX));
    b.bench("oracle_fault_layer", "budgeted", || {
        for &q in &queries {
            black_box(budgeted.call_pair(q));
        }
    });
}

/// DESIGN.md §10 ablation: cost of the observation layer on the oracle hot
/// path. `disabled` is an oracle with no sink or registry attached — it
/// must be indistinguishable from `oracle_fault_layer/clean` (the zero-cost
/// disabled path); `null_sink`, `ring_sink`, and `metrics` price the
/// per-call emission into each observer.
fn bench_oracle_trace_layer(b: &mut Bench) {
    use std::rc::Rc;

    let n = 256;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let queries: Vec<Pair> = Pair::all(n).step_by(13).take(1024).collect();

    let disabled = Oracle::new(&*metric);
    b.bench("oracle_trace_layer", "disabled", || {
        for &q in &queries {
            black_box(disabled.call_pair(q));
        }
    });

    let nulled = Oracle::new(&*metric)
        .with_trace(Rc::new(prox_obs::NullSink::new()) as Rc<dyn prox_obs::TraceSink>);
    b.bench("oracle_trace_layer", "null_sink", || {
        for &q in &queries {
            black_box(nulled.call_pair(q));
        }
    });

    let ringed = Oracle::new(&*metric)
        .with_trace(Rc::new(prox_obs::RingSink::new(4096)) as Rc<dyn prox_obs::TraceSink>);
    b.bench("oracle_trace_layer", "ring_sink", || {
        for &q in &queries {
            black_box(ringed.call_pair(q));
        }
    });

    let metered = Oracle::new(&*metric).with_metrics(Rc::new(prox_obs::Metrics::new()));
    b.bench("oracle_trace_layer", "metrics", || {
        for &q in &queries {
            black_box(metered.call_pair(q));
        }
    });
}

/// DESIGN.md §11 ablation: cost of the untrusted-oracle trust layer.
/// `disabled` is a plain oracle with no injector or auditor — it must be
/// indistinguishable from `oracle_trace_layer/clean` (same zero-cost
/// detached-path discipline as §9/§10); `corrupt_rate0` prices the
/// per-call corruption schedule hash alone; `audited_vote1` adds the
/// detection-mode sandwich check on every resolution, and
/// `audited_vote3` pays full first-to-3 voting.
fn bench_oracle_trust_layer(b: &mut Bench) {
    use prox_bounds::{AuditPolicy, BoundResolver, DistanceResolver};
    use prox_core::CorruptionInjector;

    let n = 256;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let queries: Vec<Pair> = Pair::all(n).step_by(13).take(1024).collect();

    let clean = Oracle::new(&*metric);
    b.bench("oracle_trust_layer", "disabled", || {
        for &q in &queries {
            black_box(clean.call_pair(q));
        }
    });

    let rate0 = Oracle::new(&*metric).with_corruption(CorruptionInjector::new(0.0, SEED));
    b.bench("oracle_trust_layer", "corrupt_rate0", || {
        for &q in &queries {
            black_box(rate0.call_pair(q));
        }
    });

    // Audited cells build a fresh resolver per iteration: the resolver
    // memoizes resolutions, so a reused one would price cache hits, not
    // the audit. The un-audited `vanilla_baseline` cell prices that same
    // construction + resolve loop without an auditor, so the audit cost
    // is the delta against it.
    let oracle = Oracle::new(&*metric);
    b.bench("oracle_trust_layer", "vanilla_baseline", || {
        let mut r = BoundResolver::vanilla(&oracle);
        for &q in &queries {
            black_box(r.resolve(q));
        }
    });
    b.bench("oracle_trust_layer", "audited_vote1", || {
        let mut r = BoundResolver::vanilla(&oracle).with_audit(AuditPolicy::detect_only());
        for &q in &queries {
            black_box(r.resolve(q));
        }
    });
    b.bench("oracle_trust_layer", "audited_vote3", || {
        let mut r = BoundResolver::vanilla(&oracle).with_audit(AuditPolicy::vote(3, 3));
        for &q in &queries {
            black_box(r.resolve(q));
        }
    });
}

fn bench_oracle_weak_layer(b: &mut Bench) {
    use prox_bounds::{BoundResolver, CascadeResolver, DistanceResolver};
    use prox_core::WeakOracle;

    let n = 256;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let queries: Vec<Pair> = Pair::all(n).step_by(13).take(1024).collect();

    // Cascade-disabled path: a bare resolver with no weak tier. The
    // bench-gate holds the wrapped `disabled` cell within 2x of this —
    // `--weak` off must stay free. Fresh resolver per iteration, as in
    // the trust-layer cells: a reused one would price cache hits.
    let oracle = Oracle::new(&*metric);
    b.bench("oracle_weak_layer", "clean", || {
        let mut r = BoundResolver::vanilla(&oracle);
        for &q in &queries {
            black_box(r.resolve(q));
        }
    });
    b.bench("oracle_weak_layer", "disabled", || {
        let mut r = BoundResolver::vanilla(&oracle);
        for &q in &queries {
            black_box(r.resolve(q));
        }
    });

    // Cascade-enabled cells: weak-tier cost per resolution. At rate 0
    // every fresh pair quorums on the first two probes; at 0.05 a few
    // pairs pay extra attempts or escalate to the strong tier.
    b.bench("oracle_weak_layer", "cascade_rate0", || {
        let mut r = CascadeResolver::new(
            BoundResolver::vanilla(&oracle),
            WeakOracle::new(&*metric, 0.0, SEED),
        );
        for &q in &queries {
            black_box(r.resolve(q));
        }
    });
    b.bench("oracle_weak_layer", "cascade_rate05", || {
        let mut r = CascadeResolver::new(
            BoundResolver::vanilla(&oracle),
            WeakOracle::new(&*metric, 0.05, SEED),
        );
        for &q in &queries {
            black_box(r.resolve(q));
        }
    });
}

fn bench_oracle_span_layer(b: &mut Bench) {
    use prox_bounds::{BoundResolver, DistanceResolver};
    use prox_obs::{NullSink, SpanGuard, TraceSink};
    use std::rc::Rc;

    let n = 256;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let queries: Vec<Pair> = Pair::all(n).step_by(13).take(1024).collect();

    // Span-free baseline: the resolve loop with no observability at all.
    // Fresh resolver per iteration, as in the trust-layer cells: a reused
    // one would price cache hits.
    let oracle = Oracle::new(&*metric);
    b.bench("oracle_span_layer", "clean", || {
        let mut r = BoundResolver::vanilla(&oracle);
        for &q in &queries {
            black_box(r.resolve(q));
        }
    });

    // Detached path: spans in the code, no sink attached. Every
    // `SpanGuard::enter` is one `Option` discriminant test; the bench-gate
    // holds this cell within 2x of `clean`.
    b.bench("oracle_span_layer", "disabled", || {
        let mut r = BoundResolver::vanilla(&oracle);
        let sink: Option<Rc<dyn TraceSink>> = None;
        for &q in &queries {
            let _span = SpanGuard::enter(sink.clone(), "query");
            black_box(r.resolve(q));
        }
    });

    // Attached path: per-query span enter/exit events into a counting
    // sink. Not gated — this prices what tracing costs when you ask for
    // it, not a regression gate.
    b.bench("oracle_span_layer", "enabled", || {
        let mut r = BoundResolver::vanilla(&oracle);
        let sink: Option<Rc<dyn TraceSink>> = Some(Rc::new(NullSink::new()));
        for &q in &queries {
            let _span = SpanGuard::enter(sink.clone(), "query");
            black_box(r.resolve(q));
        }
    });
}

/// DESIGN.md §16 gate: the serving layer's warm-path overhead. Both
/// cells resolve the same fully-known query mix — every pair is
/// pre-certified, so there are no strong calls and no WAL writes — and
/// the delta prices the serve bookkeeping alone (admission accounting,
/// snapshot preload, freshness partition). The bench-gate holds
/// `store_layer/serve` within 2x of `store_layer/direct`.
fn bench_store_layer(b: &mut Bench) {
    use prox_bounds::{BoundResolver, DistanceResolver};
    use prox_serve::{run_group, GroupOutcome, PairGroupQuery, SessionConfig};

    let n = 128;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let oracle = Oracle::new(&*metric);
    let pairs: Vec<Pair> = Pair::all(32).collect();
    let snapshot: Vec<(Pair, f64)> = pairs.iter().map(|&p| (p, oracle.call_pair(p))).collect();
    let query = PairGroupQuery::explicit(pairs.clone());

    // Direct resolution: the batch workflow `serve` replaces — expand
    // the same query, preload the cache, resolve the mix, export the
    // known set for the next run — on the same resolver shape
    // `run_group` builds.
    b.bench("store_layer", "direct", || {
        let mix = query.pairs();
        let mut r = BoundResolver::new(&oracle, TriScheme::new(n, 1.0));
        for &(p, d) in &snapshot {
            r.preload(p, d);
        }
        let mut acc = 0.0;
        for &q in &mix {
            acc += r.resolve(q);
        }
        let mut known = Vec::new();
        r.export_known(&mut known);
        black_box((acc, known.len()));
    });

    let config = SessionConfig::default();
    b.bench("store_layer", "serve", || {
        let out = run_group(&*metric, &snapshot, &[], &query, 0, &config);
        if let GroupOutcome::Served(s) = out {
            black_box(s.response.store_hits);
        }
    });
}

fn main() {
    let mut b = Bench::named("schemes");
    bench_queries(&mut b);
    bench_updates(&mut b);
    bench_tri_adjacency(&mut b);
    bench_dijkstra_reset(&mut b);
    bench_oracle_fault_layer(&mut b);
    bench_oracle_trace_layer(&mut b);
    bench_oracle_trust_layer(&mut b);
    bench_oracle_weak_layer(&mut b);
    bench_oracle_span_layer(&mut b);
    bench_store_layer(&mut b);
    b.finish();
}
