//! Per-operation cost of the bound schemes (the micro view of Fig. 3c/5a).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prox_bounds::{
    laesa_bootstrap, Adm, BoundScheme, Laesa, Splub, Tlaesa, TriBTreeScheme, TriScheme,
};
use prox_core::{Oracle, Pair};
use prox_datasets::{ClusteredPlane, Dataset};

const SEED: u64 = 20210620;

/// Pre-resolves 4·n random-ish edges into a scheme.
fn feed(scheme: &mut dyn BoundScheme, metric: &(dyn prox_core::Metric + Send + Sync), n: usize) {
    let oracle = Oracle::new(metric);
    for p in Pair::all(n).step_by((n / 8).max(1)) {
        scheme.record(p, oracle.call_pair(p));
    }
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound_query");
    for n in [128usize, 256] {
        let metric = ClusteredPlane::default().metric(n, SEED);
        let queries: Vec<Pair> = Pair::all(n).step_by(13).take(256).collect();

        let mut tri = TriScheme::new(n, 1.0);
        feed(&mut tri, &*metric, n);
        group.bench_with_input(BenchmarkId::new("tri", n), &n, |b, _| {
            b.iter(|| {
                for &q in &queries {
                    black_box(tri.bounds(q));
                }
            })
        });

        let mut splub = Splub::new(n, 1.0);
        feed(&mut splub, &*metric, n);
        group.bench_with_input(BenchmarkId::new("splub", n), &n, |b, _| {
            b.iter(|| {
                for &q in &queries {
                    black_box(splub.bounds(q));
                }
            })
        });

        let mut adm = Adm::new(n, 1.0);
        feed(&mut adm, &*metric, n);
        group.bench_with_input(BenchmarkId::new("adm_query", n), &n, |b, _| {
            b.iter(|| {
                for &q in &queries {
                    black_box(adm.bounds(q));
                }
            })
        });

        let oracle = Oracle::new(&*metric);
        let boot = laesa_bootstrap(&oracle, 8, SEED);
        let mut laesa = Laesa::new(1.0, &boot);
        group.bench_with_input(BenchmarkId::new("laesa", n), &n, |b, _| {
            b.iter(|| {
                for &q in &queries {
                    black_box(laesa.bounds(q));
                }
            })
        });

        let oracle2 = Oracle::new(&*metric);
        let mut tlaesa = Tlaesa::build(&oracle2, 8, 16, SEED);
        group.bench_with_input(BenchmarkId::new("tlaesa", n), &n, |b, _| {
            b.iter(|| {
                for &q in &queries {
                    black_box(tlaesa.bounds(q));
                }
            })
        });
    }
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("bound_update");
    group.sample_size(10);
    for n in [128usize, 256] {
        let metric = ClusteredPlane::default().metric(n, SEED);
        let oracle = Oracle::new(&*metric);
        let edges: Vec<(Pair, f64)> = Pair::all(n)
            .step_by(7)
            .take(200)
            .map(|p| (p, oracle.call_pair(p)))
            .collect();

        group.bench_with_input(BenchmarkId::new("tri", n), &n, |b, _| {
            b.iter(|| {
                let mut s = TriScheme::new(n, 1.0);
                for &(p, d) in &edges {
                    s.record(p, d);
                }
                black_box(s.m())
            })
        });
        group.bench_with_input(BenchmarkId::new("splub", n), &n, |b, _| {
            b.iter(|| {
                let mut s = Splub::new(n, 1.0);
                for &(p, d) in &edges {
                    s.record(p, d);
                }
                black_box(s.m())
            })
        });
        group.bench_with_input(BenchmarkId::new("adm", n), &n, |b, _| {
            b.iter(|| {
                let mut s = Adm::new(n, 1.0);
                for &(p, d) in &edges {
                    s.record(p, d);
                }
                black_box(s.m())
            })
        });
    }
    group.finish();
}

/// DESIGN.md ablation: sorted-`Vec` vs `BTreeMap` adjacency inside Tri.
fn bench_tri_adjacency(c: &mut Criterion) {
    let mut group = c.benchmark_group("tri_adjacency");
    let n = 512;
    let metric = ClusteredPlane::default().metric(n, SEED);
    let oracle = Oracle::new(&*metric);
    let edges: Vec<(Pair, f64)> = Pair::all(n)
        .step_by(23)
        .map(|p| (p, oracle.call_pair(p)))
        .collect();
    let queries: Vec<Pair> = Pair::all(n).step_by(101).collect();

    group.bench_function("sorted_vec", |b| {
        b.iter(|| {
            let mut s = TriScheme::new(n, 1.0);
            for &(p, d) in &edges {
                s.record(p, d);
            }
            let mut acc = 0.0;
            for &q in &queries {
                acc += s.bounds(q).0;
            }
            black_box(acc)
        })
    });
    group.bench_function("btree", |b| {
        b.iter(|| {
            let mut s = TriBTreeScheme::new(n, 1.0);
            for &(p, d) in &edges {
                s.record(p, d);
            }
            let mut acc = 0.0;
            for &q in &queries {
                acc += s.bounds(q).0;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries, bench_updates, bench_tri_adjacency);
criterion_main!(benches);
