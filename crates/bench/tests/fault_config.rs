//! The process-global [`OracleConfig`] and the I6 fault-equivalence
//! invariant at the harness level: a faulty-but-retried run produces the
//! same algorithm output as a clean run, and its billed call count is
//! exactly `clean + faults_injected`.
//!
//! Lives in its own integration-test binary because `set_oracle_config`
//! is process-wide: sharing a binary with unrelated concurrent tests
//! would race on the global.

use prox_algos::{prim_mst, try_prim_mst};
use prox_bench::{
    clear_oracle_config, oracle_config, run_plugged, set_oracle_config, OracleConfig, Plug,
};
use prox_core::{CallBudget, FaultInjector, OracleError, RetryPolicy};
use prox_datasets::{ClusteredPlane, Dataset};

#[test]
fn faulty_run_matches_clean_run_and_bills_the_faults() {
    let metric = ClusteredPlane::default().metric(60, 9);

    clear_oracle_config();
    let (clean_mst, clean) = run_plugged(Plug::TriBoot, &*metric, 6, 3, |r| prim_mst(r));
    assert_eq!(clean.fault_stats.faults_injected, 0);

    set_oracle_config(OracleConfig {
        faults: Some(FaultInjector::new(0.1, 77)),
        retry: RetryPolicy::standard(4),
        budget: CallBudget::unlimited(),
        corrupt: None,
        vote: None,
        weak: None,
        degrade: false,
    });
    let (faulty_mst, faulty) = run_plugged(Plug::TriBoot, &*metric, 6, 3, |r| {
        try_prim_mst(r).expect("retries absorb every injected fault")
    });
    clear_oracle_config();

    assert_eq!(
        faulty_mst.edge_keys(),
        clean_mst.edge_keys(),
        "I6: fault-retried output must equal the clean output"
    );
    assert!(faulty.fault_stats.faults_injected > 0, "rate 0.1 must fire");
    assert_eq!(
        faulty.fault_stats.retries,
        faulty.fault_stats.faults_injected
    );
    assert_eq!(
        faulty.total_calls(),
        clean.total_calls() + faulty.fault_stats.faults_injected,
        "every injected fault is billed exactly once on top of the clean cost"
    );
    assert!(
        faulty.fault_stats.backoff_time > std::time::Duration::ZERO,
        "retries charge virtual backoff time"
    );
}

#[test]
fn budget_exhaustion_surfaces_as_an_error_not_a_panic() {
    let metric = ClusteredPlane::default().metric(60, 9);
    set_oracle_config(OracleConfig {
        faults: None,
        retry: RetryPolicy::none(),
        budget: CallBudget::calls(50),
        corrupt: None,
        vote: None,
        weak: None,
        degrade: false,
    });
    let (outcome, result) = run_plugged(Plug::Vanilla, &*metric, 0, 3, |r| try_prim_mst(r));
    clear_oracle_config();

    match outcome {
        Err(OracleError::BudgetExhausted { calls }) => assert_eq!(calls, 50),
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert_eq!(result.total_calls(), 50, "billing stops at the budget");
}

#[test]
fn config_install_and_clear_round_trip() {
    clear_oracle_config();
    assert!(oracle_config().is_none());
    set_oracle_config(OracleConfig::default());
    assert!(oracle_config().is_some());
    clear_oracle_config();
    assert!(oracle_config().is_none());
}
