//! End-to-end `prox-cli` flag validation: malformed, zero, or NaN values
//! for the oracle knobs must be rejected with a specific message *and*
//! the usage hint — never silently fall through to a default parse.
//! Also exercises the audited-run and `--lenient-load` happy paths.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_prox-cli"))
        .args(args)
        .output()
        .expect("spawn prox-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Every rejected flag must explain itself and then show the usage
/// block, so the user learns the expected shape without a second try.
fn assert_rejected(args: &[&str], expected_msg: &str) {
    let (ok, _, stderr) = run(args);
    assert!(!ok, "{args:?} must fail, stderr: {stderr}");
    assert!(
        stderr.contains(expected_msg),
        "{args:?}: stderr {stderr:?} missing {expected_msg:?}"
    );
    assert!(
        stderr.contains("usage: prox-cli"),
        "{args:?}: rejection must include the usage hint, got {stderr:?}"
    );
}

#[test]
fn faults_flag_rejects_zero_nan_and_garbage() {
    assert_rejected(
        &["prim", "--faults", "0"],
        "--faults rate must be a probability in (0, 1]",
    );
    assert_rejected(
        &["prim", "--faults", "NaN"],
        "--faults rate must be a probability in (0, 1]",
    );
    assert_rejected(
        &["prim", "--faults", "1.5"],
        "--faults rate must be a probability in (0, 1]",
    );
    assert_rejected(
        &["prim", "--faults", "0.5:x"],
        "--faults expects RATE[:SEED]",
    );
    assert_rejected(
        &["prim", "--faults", "lots"],
        "--faults expects RATE[:SEED]",
    );
}

#[test]
fn retry_and_budget_flags_reject_zero_and_garbage() {
    assert_rejected(&["prim", "--retry", "0"], "--retry 0 retries nothing");
    assert_rejected(&["prim", "--retry", "x"], "--retry expects N[:BASE_MS]");
    assert_rejected(&["prim", "--budget", "0"], "--budget 0 forbids");
    assert_rejected(
        &["prim", "--budget", "many"],
        "--budget expects a call count",
    );
}

#[test]
fn corrupt_flag_rejects_out_of_range_nan_and_garbage() {
    assert_rejected(
        &["prim", "--corrupt", "-0.1"],
        "--corrupt rate must be a probability in [0, 1]",
    );
    assert_rejected(
        &["prim", "--corrupt", "1.5"],
        "--corrupt rate must be a probability in [0, 1]",
    );
    assert_rejected(
        &["prim", "--corrupt", "NaN"],
        "--corrupt rate must be a probability in [0, 1]",
    );
    assert_rejected(
        &["prim", "--corrupt", "0.5:"],
        "--corrupt expects RATE[:SEED]",
    );
}

#[test]
fn vote_flag_rejects_zero_and_inverted_pools() {
    assert_rejected(&["prim", "--vote", "0"], "--vote needs N >= K >= 1");
    assert_rejected(&["prim", "--vote", "3:2"], "--vote needs N >= K >= 1");
    assert_rejected(&["prim", "--vote", "5:4"], "--vote needs N >= K >= 1");
    assert_rejected(&["prim", "--vote", "two"], "--vote expects K[:N]");
}

#[test]
fn weak_flag_rejects_out_of_range_nan_and_garbage() {
    assert_rejected(
        &["prim", "--weak", "-0.1"],
        "--weak rate must be a probability in [0, 1]",
    );
    assert_rejected(
        &["prim", "--weak", "1.5"],
        "--weak rate must be a probability in [0, 1]",
    );
    assert_rejected(
        &["prim", "--weak", "NaN"],
        "--weak rate must be a probability in [0, 1]",
    );
    assert_rejected(&["prim", "--weak", "0.1:x"], "--weak expects RATE[:SEED]");
    assert_rejected(&["prim", "--weak", "some"], "--weak expects RATE[:SEED]");
}

#[test]
fn degrade_flag_requires_a_weak_tier() {
    assert_rejected(&["prim", "--degrade"], "--degrade requires --weak");
}

#[test]
fn weak_run_reports_tier_accounting_and_stays_exact() {
    let base = &["prim", "--dataset", "sf", "--n", "40", "--plug", "tri"];
    let (ok, clean_stdout, stderr) = run(base);
    assert!(ok, "clean run failed: {stderr}");
    let clean_mst = clean_stdout
        .lines()
        .find(|l| l.contains("MST weight"))
        .expect("clean MST line")
        .to_string();

    let mut weak = base.to_vec();
    weak.extend(["--weak", "0.1:7"]);
    let (ok, stdout, stderr) = run(&weak);
    assert!(ok, "weak run must succeed, stderr: {stderr}");
    assert!(
        stdout.contains(&clean_mst),
        "I10: weak-cascade output must match the clean run, got {stdout}"
    );
    assert!(
        stdout.contains("weak tier    :") && stdout.contains("resolutions"),
        "weak runs must print the tier accounting, got {stdout}"
    );
}

#[test]
fn audited_run_reports_corruption_accounting() {
    let (ok, stdout, stderr) = run(&[
        "prim",
        "--dataset",
        "sf",
        "--n",
        "40",
        "--plug",
        "tri-nb",
        "--corrupt",
        "0.05:20210620",
        "--vote",
        "3",
    ]);
    assert!(ok, "audited run must succeed, stderr: {stderr}");
    assert!(stdout.contains("MST weight"), "stdout: {stdout}");
    assert!(
        stdout.contains("audit        :") && stdout.contains("re-queries billed"),
        "audited runs must print the corruption accounting, got {stdout}"
    );
}

#[test]
fn serve_requires_a_store_directory() {
    assert_rejected(&["serve"], "serve requires --store DIR");
    // A plain file is not a store directory.
    let file = std::env::temp_dir().join(format!("prox-cli-storefile-{}", std::process::id()));
    std::fs::write(&file, "not a directory").expect("write file");
    let file_str = file.to_str().expect("utf8 path");
    assert_rejected(
        &["serve", "--store", file_str],
        "--store expects a directory path",
    );
    std::fs::remove_file(&file).ok();
}

#[test]
fn serve_flags_reject_zero_and_garbage() {
    let base = &["serve", "--store", "ignored-store"];
    fn with<'a>(base: &[&'a str], extra: &[&'a str]) -> Vec<&'a str> {
        let mut v = base.to_vec();
        v.extend_from_slice(extra);
        v
    }
    assert_rejected(
        &with(base, &["--sessions", "0"]),
        "--sessions expects a positive session count",
    );
    assert_rejected(
        &with(base, &["--sessions", "many"]),
        "--sessions expects a positive session count",
    );
    assert_rejected(
        &with(base, &["--admit", "lots"]),
        "--admit expects a call count",
    );
    assert_rejected(&with(base, &["--admit", "0"]), "--admit 0 admits nothing");
    assert_rejected(
        &with(base, &["--groups", "0"]),
        "--groups expects a positive group count",
    );
    assert_rejected(
        &with(base, &["--kill-after-commits", "0"]),
        "--kill-after-commits expects a positive commit count",
    );
    assert_rejected(
        &with(base, &["--weak", "1.5"]),
        "--weak rate must be a probability in [0, 1]",
    );
    assert_rejected(&with(base, &["--degrade"]), "--degrade requires --weak");
}

#[test]
fn serve_rejects_an_unreadable_or_malformed_client_script() {
    assert_rejected(
        &[
            "serve",
            "--store",
            "ignored-store",
            "--client-script",
            "/definitely/not/here.script",
        ],
        "--client-script /definitely/not/here.script",
    );

    // A readable script with a bad token is rejected with its line number.
    let dir = std::env::temp_dir().join(format!("prox-cli-badscript-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let script = dir.join("bad.script");
    std::fs::write(&script, "0-1\nbogus\n").expect("write script");
    let script_str = script.to_str().expect("utf8 path");
    assert_rejected(
        &[
            "serve",
            "--store",
            "ignored-store",
            "--client-script",
            script_str,
        ],
        "line 2",
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The "strong calls : N (...)" line of a serve summary.
fn strong_calls(stdout: &str) -> u64 {
    stdout
        .lines()
        .find(|l| l.starts_with("strong calls"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|t| t.trim().split(' ').next())
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("no strong-calls line in {stdout:?}"))
}

#[test]
fn serve_reuses_the_shared_store_across_clients() {
    let dir = std::env::temp_dir().join(format!("prox-cli-serve-reuse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.join("store");
    let store_str = store.to_str().expect("utf8 path");
    let base = &[
        "serve",
        "--store",
        store_str,
        "--dataset",
        "sf",
        "--n",
        "64",
        "--groups",
        "5",
        "--seed",
        "9",
    ];

    // Client A starts cold and pays the full bill.
    let (ok, a_out, stderr) = run(base);
    assert!(ok, "first serve failed: {stderr}");
    assert!(
        stderr.contains("starting cold"),
        "first run must start cold, got {stderr}"
    );
    let a = strong_calls(&a_out);
    assert!(a > 0, "cold client must pay strong calls, got {a_out}");

    // Client B replays the WAL and pays strictly less (here: nothing) —
    // the cross-query reuse the serving layer exists for.
    let (ok, b_out, stderr) = run(base);
    assert!(ok, "second serve failed: {stderr}");
    assert!(
        stderr.contains("recovered"),
        "second run must recover the WAL, got {stderr}"
    );
    let b = strong_calls(&b_out);
    assert!(
        b < a,
        "second client must pay strictly fewer strong calls ({b} vs {a})"
    );

    // A store recorded for one problem instance refuses another.
    let (ok, _, stderr) = run(&[
        "serve",
        "--store",
        store_str,
        "--dataset",
        "sf",
        "--n",
        "32",
        "--groups",
        "5",
        "--seed",
        "9",
    ]);
    assert!(!ok, "foreign manifest must be refused");
    assert!(stderr.contains("[store] open"), "stderr: {stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_trace_reports_admission_in_its_own_section() {
    let dir = std::env::temp_dir().join(format!("prox-cli-serve-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let store = dir.join("store");
    let trace = dir.join("serve.jsonl");
    let (ok, stdout, stderr) = run(&[
        "serve",
        "--store",
        store.to_str().expect("utf8 path"),
        "--dataset",
        "sf",
        "--n",
        "48",
        "--groups",
        "4",
        "--sessions",
        "2",
        "--trace",
        trace.to_str().expect("utf8 path"),
    ]);
    assert!(ok, "traced serve failed: {stderr}");
    assert!(stdout.contains("admission    : 4 admitted"), "{stdout}");

    // `prox-cli report` renders the serve events in their own section,
    // and its admitted count matches the runner's summary exactly.
    let (ok, report, stderr) = run(&["report", trace.to_str().expect("utf8 path")]);
    assert!(ok, "report failed: {stderr}");
    assert!(
        report.contains("serving / admission:"),
        "report must have a serving section, got {report}"
    );
    assert!(
        report.contains("4 groups admitted"),
        "report admitted count must match the runner summary, got {report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lenient_load_salvages_a_damaged_cache() {
    let dir = std::env::temp_dir().join(format!("prox-cli-lenient-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let cache = dir.join("dists.csv");
    let cache_str = cache.to_str().expect("utf8 path");

    // Build a genuine cache first, then damage one line of it.
    let base = &[
        "prim",
        "--dataset",
        "sf",
        "--n",
        "30",
        "--plug",
        "tri-nb",
        "--cache",
        cache_str,
    ];
    let (ok, _, stderr) = run(base);
    assert!(ok, "cache-building run failed: {stderr}");
    let mut text = std::fs::read_to_string(&cache).expect("read cache");
    text.push_str("7,7,oops\n");
    std::fs::write(&cache, text).expect("rewrite cache");

    // Strict load refuses the file and points at the escape hatch.
    let (ok, _, stderr) = run(base);
    assert!(!ok, "strict load must refuse a damaged cache");
    assert!(
        stderr.contains("use --lenient-load to salvage"),
        "stderr: {stderr}"
    );

    // Lenient load drops the damaged line, keeps the rest, and the run
    // completes.
    let mut lenient = base.to_vec();
    lenient.push("--lenient-load");
    let (ok, stdout, stderr) = run(&lenient);
    assert!(ok, "lenient run failed: {stderr}");
    assert!(stdout.contains("MST weight"), "stdout: {stdout}");
    assert!(
        stderr.contains("1 line(s) dropped"),
        "lenient load must report the dropped line, got {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
