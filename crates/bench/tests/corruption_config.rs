//! Harness-level corruption auditing: a value-corrupted, vote-audited run
//! produces byte-identical output to a clean run (invariant I9), bills its
//! re-queries honestly, and refuses plugs that cannot be defended.
//!
//! Own integration-test binary because `set_oracle_config` is
//! process-wide; a local lock serializes the tests that touch it.

use std::sync::Mutex;

use prox_algos::prim_mst;
use prox_bench::{
    clear_oracle_config, run_plugged, set_oracle_config, try_run_plugged_cached, OracleConfig, Plug,
};
use prox_core::{CallBudget, CorruptionInjector, OracleError, RetryPolicy};
use prox_datasets::{ClusteredPlane, Dataset};

static CONFIG_LOCK: Mutex<()> = Mutex::new(());

fn corrupt_config(rate: f64, seed: u64, vote: Option<(u32, u32)>) -> OracleConfig {
    OracleConfig {
        faults: None,
        retry: RetryPolicy::none(),
        budget: CallBudget::unlimited(),
        corrupt: Some(CorruptionInjector::new(rate, seed)),
        vote,
        weak: None,
        degrade: false,
    }
}

#[test]
fn corrupted_vote_run_matches_clean_run_and_bills_requeries() {
    let _g = CONFIG_LOCK.lock().expect("config lock");
    let metric = ClusteredPlane::default().metric(60, 9);

    clear_oracle_config();
    let (clean_mst, clean) = run_plugged(Plug::TriNb, &*metric, 0, 3, |r| prim_mst(r));
    assert_eq!(clean.fault_stats.corruptions_injected, 0);

    set_oracle_config(corrupt_config(0.05, 20210620, Some((3, 3))));
    let (mst, res) = run_plugged(Plug::TriNb, &*metric, 0, 3, |r| prim_mst(r));
    clear_oracle_config();

    assert_eq!(
        mst.edge_keys(),
        clean_mst.edge_keys(),
        "I9: vote-audited output must equal the clean output"
    );
    assert_eq!(
        mst.total_weight.to_bits(),
        clean_mst.total_weight.to_bits(),
        "I9: byte-identical weight"
    );
    assert!(
        res.fault_stats.corruptions_injected > 0,
        "rate 0.05 must fire on this workload"
    );
    assert_eq!(
        res.corruption.detected, res.fault_stats.corruptions_injected,
        "every injected corruption is detected, none invented"
    );
    assert_eq!(
        res.total_calls(),
        clean.total_calls() + res.corruption.requeries,
        "re-queries are billed exactly on top of the clean cost"
    );
    assert_eq!(res.corruption.retracted, 0, "voting never records a lie");
}

#[test]
fn corruption_refuses_unauditable_plugs() {
    let _g = CONFIG_LOCK.lock().expect("config lock");
    let metric = ClusteredPlane::default().metric(30, 9);
    set_oracle_config(corrupt_config(0.05, 7, None));
    for plug in [Plug::TriBoot, Plug::Laesa, Plug::Tlaesa, Plug::Dft] {
        let err = try_run_plugged_cached(plug, &*metric, 4, 3, &[], false, |r| prim_mst(r))
            .map(|_| ())
            .expect_err("unauditable plug must refuse a corrupt oracle");
        assert!(
            matches!(err, OracleError::Permanent { reason } if reason.contains("bootstrap-free")),
            "got {err:?}"
        );
    }
    clear_oracle_config();
}

#[test]
fn corrupt_without_vote_defaults_to_detection_mode() {
    let _g = CONFIG_LOCK.lock().expect("config lock");
    let metric = ClusteredPlane::default().metric(40, 9);
    // Rate 0 injects nothing; detection mode then adds zero overhead and
    // zero detections — the audited run is bit-identical to clean.
    clear_oracle_config();
    let (clean_mst, clean) = run_plugged(Plug::Splub, &*metric, 0, 3, |r| prim_mst(r));
    set_oracle_config(corrupt_config(0.0, 1, None));
    let (mst, res) = run_plugged(Plug::Splub, &*metric, 0, 3, |r| prim_mst(r));
    clear_oracle_config();
    assert_eq!(mst.edge_keys(), clean_mst.edge_keys());
    assert_eq!(res.total_calls(), clean.total_calls());
    assert_eq!(res.corruption, Default::default());
}
