//! The trade the paper draws in §6.1, on a concrete workload: specialized
//! indexes answer *search* queries with few calls after an up-front
//! construction bill; the resolver framework spends calls only where the
//! running algorithm's comparisons need them — and generalizes beyond
//! search.

use prox_algos::{knn_query, range_members, BoundResolver};
use prox_bounds::TriScheme;
use prox_core::{Metric, ObjectId, Oracle};
use prox_datasets::{ClusteredPlane, Dataset};
use prox_index::{BkTree, Gnat, MTree, VpTree};

const N: usize = 150;
const SEED: u64 = 20210620;

fn brute_knn(metric: &dyn Metric, q: ObjectId, k: usize) -> Vec<ObjectId> {
    let mut all: Vec<(f64, ObjectId)> = (0..metric.len() as ObjectId)
        .filter(|&v| v != q)
        .map(|v| (metric.distance(q, v), v))
        .collect();
    all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    all[..k].iter().map(|&(_, v)| v).collect()
}

#[test]
fn vptree_and_framework_agree_on_knn() {
    let metric = ClusteredPlane::default().metric(N, SEED);

    // VP-tree route.
    let o_tree = Oracle::new(&*metric);
    let tree = VpTree::build(&o_tree);
    let construction = tree.construction_calls();

    // Framework route.
    let o_frame = Oracle::new(&*metric);
    let mut resolver = BoundResolver::new(&o_frame, TriScheme::new(N, 1.0));

    for q in (0..N as ObjectId).step_by(17) {
        let want = brute_knn(&*metric, q, 5);
        let via_tree: Vec<ObjectId> = tree
            .knn(&o_tree, q, 5)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let via_frame: Vec<ObjectId> = knn_query(&mut resolver, q, 5)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(via_tree, want, "VP-tree exactness, q={q}");
        assert_eq!(via_frame, want, "framework exactness, q={q}");
    }

    // The index paid a construction bill before the first query.
    assert!(
        construction as usize > N,
        "VP-tree construction is more than one call per object"
    );
    // Per additional query, the tree is cheap; the framework amortizes as
    // its knowledge grows. Both facts are workload truths, not assertions
    // we need to rank — just record that both stayed far below brute force.
    let brute_cost = (N - 1) * (N / 17 + 1);
    assert!((o_tree.calls() as usize) < construction as usize + brute_cost);
    assert!((o_frame.calls() as usize) < brute_cost + N * N / 2);
}

/// Every index and the resolver framework must return the identical range
/// result — four independent prunings of the same query.
#[test]
fn all_surfaces_agree_on_range_queries() {
    let metric = ClusteredPlane::default().metric(N, SEED);
    let o_vp = Oracle::new(&*metric);
    let vp = VpTree::build(&o_vp);
    let o_bk = Oracle::new(&*metric);
    let bk = BkTree::build(&o_bk, 0.05);
    let o_mt = Oracle::new(&*metric);
    let mt = MTree::build(&o_mt, 8);
    let o_gn = Oracle::new(&*metric);
    let gn = Gnat::build(&o_gn, 6, 8);
    let o_fr = Oracle::new(&*metric);
    let mut fr = BoundResolver::new(&o_fr, TriScheme::new(N, 1.0));

    for (q, radius) in [(5u32, 0.12), (60, 0.3), (149, 0.05)] {
        let want: Vec<ObjectId> = (0..N as ObjectId)
            .filter(|&v| v != q && metric.distance(q, v) <= radius)
            .collect();
        assert_eq!(vp.range(&o_vp, q, radius), want, "vptree q={q}");
        assert_eq!(bk.range(&o_bk, q, radius), want, "bktree q={q}");
        assert_eq!(mt.range(&o_mt, q, radius), want, "mtree q={q}");
        assert_eq!(gn.range(&o_gn, q, radius), want, "gnat q={q}");
        // range_members includes the center itself; strip it.
        let fr_hits: Vec<ObjectId> = range_members(&mut fr, q, radius)
            .into_iter()
            .filter(|&v| v != q)
            .collect();
        assert_eq!(fr_hits, want, "framework q={q}");
    }
}

/// M-tree and VP-tree kNN agree with the framework's kNN (same tie rule).
#[test]
fn all_surfaces_agree_on_knn() {
    let metric = ClusteredPlane::default().metric(N, SEED);
    let o_vp = Oracle::new(&*metric);
    let vp = VpTree::build(&o_vp);
    let o_mt = Oracle::new(&*metric);
    let mt = MTree::build(&o_mt, 8);
    let o_fr = Oracle::new(&*metric);
    let mut fr = BoundResolver::new(&o_fr, TriScheme::new(N, 1.0));
    for q in (0..N as ObjectId).step_by(23) {
        let want = brute_knn(&*metric, q, 6);
        let vp_ids: Vec<ObjectId> = vp.knn(&o_vp, q, 6).into_iter().map(|(v, _)| v).collect();
        let mt_ids: Vec<ObjectId> = mt.knn(&o_mt, q, 6).into_iter().map(|(v, _)| v).collect();
        let fr_ids: Vec<ObjectId> = knn_query(&mut fr, q, 6)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(vp_ids, want, "vptree q={q}");
        assert_eq!(mt_ids, want, "mtree q={q}");
        assert_eq!(fr_ids, want, "framework q={q}");
    }
}

#[test]
fn bktree_range_agrees_with_ground_truth() {
    let metric = ClusteredPlane::default().metric(N, SEED);
    let oracle = Oracle::new(&*metric);
    let tree = BkTree::build(&oracle, 0.05);
    for (q, radius) in [(3u32, 0.1), (77, 0.25), (149, 0.02)] {
        let got = tree.range(&oracle, q, radius);
        let want: Vec<ObjectId> = (0..N as ObjectId)
            .filter(|&v| v != q && metric.distance(q, v) <= radius)
            .collect();
        assert_eq!(got, want, "q={q} r={radius}");
    }
}
