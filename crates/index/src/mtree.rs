//! M-tree (Ciaccia, Patella, Zezula — VLDB 1997).
//!
//! The balanced, paged metric index the paper's related work (§6.1) cites
//! as the Voronoi-inspired design: objects live in leaves; internal entries
//! carry a routing object and a covering radius; every entry stores its
//! distance to the parent routing object, enabling the M-tree's signature
//! pruning step — many candidate entries are discarded using *already
//! computed* distances, before any new oracle call.

use prox_core::invariant::InvariantExt;
use prox_core::{Metric, ObjectId, Oracle};

/// Slack for float-boundary pruning (same rationale as the VP-tree's).
const PRUNE_EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
struct Entry {
    /// Routing object (internal) or stored object (leaf).
    oid: ObjectId,
    /// Covering radius: max distance from `oid` to anything in the subtree
    /// (0 for leaf entries).
    radius: f64,
    /// Distance from `oid` to the parent node's routing object
    /// (meaningless at the root, stored as 0).
    dist_to_parent: f64,
    /// Child node index (internal entries only).
    child: Option<usize>,
}

#[derive(Clone, Debug)]
struct Node {
    entries: Vec<Entry>,
    is_leaf: bool,
}

/// A dynamically built M-tree with configurable node capacity.
///
/// Construction inserts objects in id order, splitting overflowing nodes
/// with the `m_LB` promotion policy (first entry + farthest from it) and
/// generalized-hyperplane partitioning. All distances evaluated during
/// construction and search are counted oracle calls.
#[derive(Clone, Debug)]
pub struct MTree {
    nodes: Vec<Node>,
    root: usize,
    n: usize,
    capacity: usize,
    construction_calls: u64,
}

impl MTree {
    /// Builds the tree over all objects of `oracle` with the given node
    /// capacity (≥ 2).
    pub fn build<M: Metric>(oracle: &Oracle<M>, capacity: usize) -> Self {
        assert!(capacity >= 2, "node capacity must be at least 2");
        let n = oracle.n();
        let start = oracle.calls();
        let mut tree = MTree {
            nodes: vec![Node {
                entries: Vec::new(),
                is_leaf: true,
            }],
            root: 0,
            n,
            capacity,
            construction_calls: 0,
        };
        for o in 0..n as ObjectId {
            tree.insert(oracle, o);
        }
        tree.construction_calls = oracle.calls() - start;
        tree
    }

    fn dist<M: Metric>(oracle: &Oracle<M>, a: ObjectId, b: ObjectId) -> f64 {
        if a == b {
            0.0
        } else {
            oracle.call(a, b)
        }
    }

    fn insert<M: Metric>(&mut self, oracle: &Oracle<M>, o: ObjectId) {
        if let Some((e1, e2)) = self.insert_into(oracle, self.root, o, ObjectId::MAX) {
            // Root split: grow the tree by one level.
            let new_root = Node {
                entries: vec![e1, e2],
                is_leaf: false,
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
    }

    /// Inserts `o` under node `idx`; returns the two replacement entries
    /// when the node split. `parent_oid` is the routing object one level up
    /// (`ObjectId::MAX` at the root — dist_to_parent is then unused).
    fn insert_into<M: Metric>(
        &mut self,
        oracle: &Oracle<M>,
        idx: usize,
        o: ObjectId,
        parent_oid: ObjectId,
    ) -> Option<(Entry, Entry)> {
        if self.nodes[idx].is_leaf {
            let dp = if parent_oid == ObjectId::MAX {
                0.0
            } else {
                Self::dist(oracle, o, parent_oid)
            };
            self.nodes[idx].entries.push(Entry {
                oid: o,
                radius: 0.0,
                dist_to_parent: dp,
                child: None,
            });
            if self.nodes[idx].entries.len() > self.capacity {
                return Some(self.split(oracle, idx, parent_oid));
            }
            return None;
        }

        // Choose the subtree: min distance among entries that need no
        // radius enlargement, else min enlargement.
        let dists: Vec<f64> = self.nodes[idx]
            .entries
            .iter()
            .map(|e| Self::dist(oracle, o, e.oid))
            .collect();
        let mut best: Option<usize> = None;
        // Two-level key: no-enlargement entries always beat enlargement
        // entries, independent of the metric's normalization.
        let mut best_key = (true, f64::INFINITY);
        for (i, (&d, e)) in dists.iter().zip(&self.nodes[idx].entries).enumerate() {
            let key = if d <= e.radius {
                (false, d) // no enlargement: prefer the closest
            } else {
                (true, d - e.radius) // rank by required enlargement
            };
            if !key.0 & best_key.0 || (key.0 == best_key.0 && key.1 < best_key.1) {
                best_key = key;
                best = Some(i);
            }
        }
        let i = best.expect_invariant("internal node has entries");
        let d = dists[i];
        let (routing, child) = {
            let e = &mut self.nodes[idx].entries[i];
            if d > e.radius {
                e.radius = d;
            }
            (
                e.oid,
                e.child.expect_invariant("internal entry has a child"),
            )
        };

        if let Some((e1, e2)) = self.insert_into(oracle, child, o, routing) {
            // Replace entry i with the two split halves. Their
            // dist_to_parent must refer to *this* node's routing object,
            // re-derived below (split() filled it against the child level).
            self.nodes[idx].entries.swap_remove(i);
            let mut e1 = e1;
            let mut e2 = e2;
            e1.dist_to_parent = 0.0;
            e2.dist_to_parent = 0.0;
            self.nodes[idx].entries.push(e1);
            self.nodes[idx].entries.push(e2);
            if parent_oid != ObjectId::MAX {
                let len = self.nodes[idx].entries.len();
                for j in [len - 2, len - 1] {
                    let oid = self.nodes[idx].entries[j].oid;
                    self.nodes[idx].entries[j].dist_to_parent = Self::dist(oracle, oid, parent_oid);
                }
            }
            if self.nodes[idx].entries.len() > self.capacity {
                return Some(self.split(oracle, idx, parent_oid));
            }
        }
        None
    }

    /// Splits node `idx` into two; returns the two routing entries for the
    /// parent (dist_to_parent filled against `parent_oid` when known).
    fn split<M: Metric>(
        &mut self,
        oracle: &Oracle<M>,
        idx: usize,
        parent_oid: ObjectId,
    ) -> (Entry, Entry) {
        let entries = std::mem::take(&mut self.nodes[idx].entries);
        let is_leaf = self.nodes[idx].is_leaf;

        // Promotion: first entry + the farthest entry from it.
        let p1 = entries[0].oid;
        let d_from_p1: Vec<f64> = entries
            .iter()
            .map(|e| Self::dist(oracle, p1, e.oid))
            .collect();
        let far = d_from_p1
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect_invariant("non-empty split");
        let p2 = entries[far].oid;

        // Generalized hyperplane partition.
        let mut n1 = Node {
            entries: Vec::new(),
            is_leaf,
        };
        let mut n2 = Node {
            entries: Vec::new(),
            is_leaf,
        };
        let (mut r1, mut r2) = (0.0f64, 0.0f64);
        for (i, mut e) in entries.into_iter().enumerate() {
            let d1 = d_from_p1[i];
            let d2 = Self::dist(oracle, p2, e.oid);
            if d1 <= d2 {
                r1 = r1.max(d1 + e.radius);
                e.dist_to_parent = d1;
                n1.entries.push(e);
            } else {
                r2 = r2.max(d2 + e.radius);
                e.dist_to_parent = d2;
                n2.entries.push(e);
            }
        }
        self.nodes[idx] = n1;
        self.nodes.push(n2);
        let n2_idx = self.nodes.len() - 1;

        let dp = |oid: ObjectId| {
            if parent_oid == ObjectId::MAX {
                0.0
            } else {
                Self::dist(oracle, oid, parent_oid)
            }
        };
        (
            Entry {
                oid: p1,
                radius: r1,
                dist_to_parent: dp(p1),
                child: Some(idx),
            },
            Entry {
                oid: p2,
                radius: r2,
                dist_to_parent: dp(p2),
                child: Some(n2_idx),
            },
        )
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Oracle calls consumed by construction.
    pub fn construction_calls(&self) -> u64 {
        self.construction_calls
    }

    /// Tree height (1 = single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut idx = self.root;
        while !self.nodes[idx].is_leaf {
            idx = self.nodes[idx].entries[0]
                .child
                .expect_invariant("internal");
            h += 1;
        }
        h
    }

    /// All objects within the closed ball `dist(q, ·) <= radius`
    /// (excluding `q`), ascending by id.
    pub fn range<M: Metric>(&self, oracle: &Oracle<M>, q: ObjectId, radius: f64) -> Vec<ObjectId> {
        let mut out = Vec::new();
        // d(q, parent routing) is unknown at the root; NAN disables the
        // parent-distance prefilter there.
        self.range_node(oracle, self.root, q, radius, f64::NAN, &mut out);
        out.sort_unstable();
        out
    }

    fn range_node<M: Metric>(
        &self,
        oracle: &Oracle<M>,
        idx: usize,
        q: ObjectId,
        radius: f64,
        d_q_parent: f64,
        out: &mut Vec<ObjectId>,
    ) {
        let node = &self.nodes[idx];
        for e in &node.entries {
            // M-tree prefilter: |d(q, parent) − d(e, parent)| > r + rad(e)
            // proves the subtree is out of reach without computing d(q, e).
            if !d_q_parent.is_nan()
                && (d_q_parent - e.dist_to_parent).abs() > radius + e.radius + PRUNE_EPS
            {
                continue;
            }
            let d = Self::dist(oracle, q, e.oid);
            if node.is_leaf {
                if e.oid != q && d <= radius + PRUNE_EPS && d <= radius {
                    out.push(e.oid);
                }
            } else if d <= radius + e.radius + PRUNE_EPS {
                self.range_node(
                    oracle,
                    e.child.expect_invariant("internal"),
                    q,
                    radius,
                    d,
                    out,
                );
            }
        }
    }

    /// Exact k nearest neighbours of `q` (excluding `q`), by
    /// `(distance, id)` order — comparable one-to-one with
    /// `prox_algos::knn_query` and `VpTree::knn`.
    pub fn knn<M: Metric>(
        &self,
        oracle: &Oracle<M>,
        q: ObjectId,
        k: usize,
    ) -> Vec<(ObjectId, f64)> {
        let k = k.min(self.n.saturating_sub(1));
        if k == 0 {
            return Vec::new();
        }
        let mut best: Vec<(f64, ObjectId)> = Vec::with_capacity(k + 1);
        let mut tau = f64::INFINITY;
        self.knn_node(oracle, self.root, q, k, f64::NAN, &mut best, &mut tau);
        best.into_iter().map(|(d, id)| (id, d)).collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn knn_node<M: Metric>(
        &self,
        oracle: &Oracle<M>,
        idx: usize,
        q: ObjectId,
        k: usize,
        d_q_parent: f64,
        best: &mut Vec<(f64, ObjectId)>,
        tau: &mut f64,
    ) {
        // Order child visits by optimistic distance so tau tightens early.
        let node = &self.nodes[idx];
        let mut candidates: Vec<(f64, usize)> = Vec::with_capacity(node.entries.len());
        for (i, e) in node.entries.iter().enumerate() {
            if !d_q_parent.is_nan()
                && (d_q_parent - e.dist_to_parent).abs() > *tau + e.radius + PRUNE_EPS
            {
                continue; // prefiltered with zero oracle calls
            }
            let d = Self::dist(oracle, q, e.oid);
            if node.is_leaf {
                if e.oid != q {
                    let cand = (d, e.oid);
                    let pos = best.partition_point(|x| *x < cand);
                    best.insert(pos, cand);
                    if best.len() > k {
                        best.pop();
                    }
                    if best.len() == k {
                        *tau = best.last().expect_invariant("k >= 1").0;
                    }
                }
            } else {
                candidates.push((d, i));
            }
        }
        if node.is_leaf {
            return;
        }
        candidates.sort_unstable_by(|a, b| {
            let ka = (a.0 - node.entries[a.1].radius).max(0.0);
            let kb = (b.0 - node.entries[b.1].radius).max(0.0);
            ka.total_cmp(&kb)
        });
        for (d, i) in candidates {
            let e = &self.nodes[idx].entries[i];
            if (d - e.radius).max(0.0) > *tau + PRUNE_EPS {
                continue;
            }
            self.knn_node(
                oracle,
                e.child.expect_invariant("internal"),
                q,
                k,
                d,
                best,
                tau,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_core::FnMetric;

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn builds_balanced_ish() {
        let oracle = line_oracle(200);
        let tree = MTree::build(&oracle, 8);
        assert_eq!(tree.len(), 200);
        assert!(tree.height() >= 2, "200 objects at cap 8 must split");
        assert!(tree.construction_calls() > 0);
    }

    #[test]
    fn range_matches_brute_force() {
        let oracle = line_oracle(60);
        let tree = MTree::build(&oracle, 6);
        let gt = oracle.ground_truth();
        for (q, radius) in [(0u32, 0.15), (30, 0.08), (59, 0.3), (15, 0.0)] {
            let got = tree.range(&oracle, q, radius);
            let want: Vec<u32> = (0..60u32)
                .filter(|&v| v != q && prox_core::Metric::distance(gt, q, v) <= radius)
                .collect();
            assert_eq!(got, want, "q {q} r {radius}");
        }
    }

    #[test]
    fn knn_matches_brute_force() {
        let oracle = line_oracle(50);
        let tree = MTree::build(&oracle, 5);
        let gt = oracle.ground_truth();
        for q in (0..50u32).step_by(7) {
            let got: Vec<u32> = tree
                .knn(&oracle, q, 4)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            let mut all: Vec<(f64, u32)> = (0..50u32)
                .filter(|&v| v != q)
                .map(|v| (prox_core::Metric::distance(gt, q, v), v))
                .collect();
            all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            let want: Vec<u32> = all[..4].iter().map(|&(_, v)| v).collect();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn knn_on_planar_clusters() {
        // Non-trivial geometry: two circles.
        let n = 64usize;
        let metric = FnMetric::new(n, 1.0, move |a, b| {
            let pt = |i: u32| {
                let half = n as u32 / 2;
                let (cx, cy) = if i < half { (0.25, 0.25) } else { (0.75, 0.75) };
                let t = 2.0 * std::f64::consts::PI * f64::from(i % half) / f64::from(half);
                (cx + 0.1 * t.cos(), cy + 0.1 * t.sin())
            };
            let (ax, ay) = pt(a);
            let (bx, by) = pt(b);
            (((ax - bx).powi(2) + (ay - by).powi(2)).sqrt() / std::f64::consts::SQRT_2).min(1.0)
        });
        let oracle = Oracle::new(&metric);
        let tree = MTree::build(&oracle, 6);
        for q in (0..n as u32).step_by(9) {
            let got: Vec<u32> = tree
                .knn(&oracle, q, 3)
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            let mut all: Vec<(f64, u32)> = (0..n as u32)
                .filter(|&v| v != q)
                .map(|v| (prox_core::Metric::distance(&metric, q, v), v))
                .collect();
            all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            let want: Vec<u32> = all[..3].iter().map(|&(_, v)| v).collect();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn parent_distance_prefilter_saves_calls() {
        let n = 300;
        let oracle = line_oracle(n);
        let tree = MTree::build(&oracle, 10);
        let before = oracle.calls();
        tree.range(&oracle, 150, 0.02);
        let calls = oracle.calls() - before;
        assert!(
            calls < n as u64 / 2,
            "prefilter + radius pruning should skip most entries: {calls}"
        );
    }
}
