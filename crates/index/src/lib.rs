//! Metric index structures from the paper's related work (§6.1).
//!
//! The paper positions its framework against *specialized* metric indexes:
//! structures that pay an up-front construction cost in oracle calls to
//! answer nearest-neighbour and range queries cheaply afterwards. Two
//! classics are implemented here, both metered through the same
//! [`prox_core::Oracle`] so their call profiles can be compared with the
//! re-authored algorithms:
//!
//! * [`VpTree`] — Yianilos' Vantage Point Tree: binary space partitioning
//!   by distance to a vantage point; exact kNN / range search with
//!   branch-and-bound pruning.
//! * [`BkTree`] — Burkhard–Keller tree over (quantized) distances; exact
//!   range search with one oracle call per visited node.
//! * [`MTree`] — the balanced, paged metric index (Ciaccia–Patella–Zezula)
//!   with covering radii and parent-distance prefiltering.
//! * [`Gnat`] — Brin's Geometric Near-neighbor Access Tree with min/max
//!   range tables for sibling-group pruning.
//!
//! The contrast the paper draws (§6.1): these indexes accelerate *search
//! queries only* — they do not generalize to MST, clustering, or other
//! proximity problems, and their construction calls are sunk cost. The
//! resolver framework spends calls only where an algorithm's comparisons
//! need them. The `index_vs_framework` test pins the trade on a concrete
//! workload.

pub mod bktree;
pub mod gnat;
pub mod mtree;
pub mod vptree;

pub use bktree::BkTree;
pub use gnat::Gnat;
pub use mtree::MTree;
pub use vptree::VpTree;
