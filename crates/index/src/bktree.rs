//! Burkhard–Keller tree (1973) over quantized distances.

use std::collections::BTreeMap;

use prox_core::invariant::InvariantExt;
use prox_core::{Metric, ObjectId, Oracle};

/// A BK-tree: children of a node are keyed by the (quantized) distance of
/// their subtree root to the node.
///
/// BK-trees classically require an **integer-valued** metric (edit
/// distance). Distances in this workspace are normalized into `[0, 1]`, so
/// the tree quantizes with a configurable `quantum`: the child key of a
/// distance `d` is `floor(d / quantum)`. Range search then widens its
/// window by one quantum on each side, which keeps results **exact** (no
/// in-bucket neighbour can be missed) at the cost of a few extra visits —
/// the standard trick for continuous metrics.
#[derive(Clone, Debug)]
pub struct BkTree {
    root: Option<Box<Node>>,
    quantum: f64,
    n: usize,
    construction_calls: u64,
}

#[derive(Clone, Debug)]
struct Node {
    id: ObjectId,
    children: BTreeMap<i64, Box<Node>>,
}

impl BkTree {
    /// Builds the tree by inserting objects in id order; every insertion
    /// walks root-to-leaf with one oracle call per visited node.
    pub fn build<M: Metric>(oracle: &Oracle<M>, quantum: f64) -> Self {
        assert!(quantum > 0.0, "quantum must be positive");
        let n = oracle.n();
        let start = oracle.calls();
        let mut root: Option<Box<Node>> = None;
        for id in 0..n as ObjectId {
            match root.as_mut() {
                None => {
                    root = Some(Box::new(Node {
                        id,
                        children: BTreeMap::new(),
                    }))
                }
                Some(node) => Self::insert(oracle, node, id, quantum),
            }
        }
        BkTree {
            root,
            quantum,
            n,
            construction_calls: oracle.calls() - start,
        }
    }

    fn insert<M: Metric>(oracle: &Oracle<M>, mut node: &mut Box<Node>, id: ObjectId, quantum: f64) {
        loop {
            let d = oracle.call(node.id, id);
            let key = (d / quantum).floor() as i64;
            // NLL-friendly: check membership, then recurse or insert.
            if let std::collections::btree_map::Entry::Vacant(e) = node.children.entry(key) {
                e.insert(Box::new(Node {
                    id,
                    children: BTreeMap::new(),
                }));
                return;
            } else {
                node = node.children.get_mut(&key).expect_invariant("just checked");
            }
        }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Oracle calls consumed by construction.
    pub fn construction_calls(&self) -> u64 {
        self.construction_calls
    }

    /// All objects within the closed ball `dist(q, ·) <= radius`
    /// (excluding `q`), ascending by id. Exact despite quantization: the
    /// child window is widened by one quantum on each side.
    pub fn range<M: Metric>(&self, oracle: &Oracle<M>, q: ObjectId, radius: f64) -> Vec<ObjectId> {
        let mut out = Vec::new();
        if let Some(root) = self.root.as_deref() {
            self.search(root, oracle, q, radius, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn search<M: Metric>(
        &self,
        node: &Node,
        oracle: &Oracle<M>,
        q: ObjectId,
        radius: f64,
        out: &mut Vec<ObjectId>,
    ) {
        let d = if node.id == q {
            0.0
        } else {
            oracle.call(q, node.id)
        };
        if node.id != q && d <= radius {
            out.push(node.id);
        }
        // Triangle inequality: a child at key `c` holds points whose
        // distance to `node` is in [c·quantum, (c+1)·quantum); such a point
        // can be within `radius` of q only if the intervals
        // [d - radius, d + radius] and the bucket overlap.
        let lo = ((d - radius) / self.quantum).floor() as i64 - 1;
        let hi = ((d + radius) / self.quantum).floor() as i64 + 1;
        for (_, child) in node.children.range(lo..=hi) {
            self.search(child, oracle, q, radius, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_core::FnMetric;

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn range_matches_brute_force() {
        let oracle = line_oracle(40);
        let tree = BkTree::build(&oracle, 0.05);
        let gt = oracle.ground_truth();
        for (q, radius) in [(0u32, 0.3), (20, 0.11), (39, 0.02)] {
            let got = tree.range(&oracle, q, radius);
            let want: Vec<u32> = (0..40u32)
                .filter(|&v| v != q && prox_core::Metric::distance(gt, q, v) <= radius)
                .collect();
            assert_eq!(got, want, "q {q} r {radius}");
        }
    }

    #[test]
    fn construction_is_n_log_n_ish() {
        let oracle = line_oracle(128);
        let tree = BkTree::build(&oracle, 0.05);
        // Each insertion costs depth-many calls; for 1/0.05 = 20 buckets the
        // fan-out is high and depth low: far less than n per insert.
        assert!(tree.construction_calls() < 128 * 30);
        assert!(tree.construction_calls() >= 127, "at least one per object");
    }

    #[test]
    fn range_prunes_visits() {
        let n = 200;
        let oracle = line_oracle(n);
        let tree = BkTree::build(&oracle, 0.02);
        let before = oracle.calls();
        tree.range(&oracle, 100, 0.03);
        let query_calls = oracle.calls() - before;
        assert!(
            query_calls < n as u64 / 2,
            "bucket windowing should prune: {query_calls} calls"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_rejected() {
        let oracle = line_oracle(4);
        let _ = BkTree::build(&oracle, 0.0);
    }
}
