//! Vantage Point Tree (Yianilos 1993).

use prox_core::invariant::InvariantExt;
use prox_core::{Metric, ObjectId, Oracle};

/// Slack on branch-pruning comparisons: a candidate at *exactly* the k-th
/// distance can sit 1 ulp across the boundary after float arithmetic, and
/// the `(distance, id)` tie rule requires it to be reachable. Visiting an
/// extra node never affects correctness, only cost.
const PRUNE_EPS: f64 = 1e-9;

/// One tree node: a vantage point, the median distance `mu` to the points
/// it covers, and inside/outside children.
#[derive(Clone, Debug)]
struct Node {
    vantage: ObjectId,
    mu: f64,
    /// Points with `dist(vantage, ·) <= mu`.
    inside: Option<Box<Node>>,
    /// Points with `dist(vantage, ·) > mu`.
    outside: Option<Box<Node>>,
}

/// An exact metric-space index: `O(n log n)` oracle calls to build, then
/// branch-and-bound kNN / range queries that call the oracle once per
/// visited node.
///
/// Queries are *by object id* (the query object participates in the same
/// oracle), mirroring how the paper's kNN experiments query within the
/// dataset.
#[derive(Clone, Debug)]
pub struct VpTree {
    root: Option<Box<Node>>,
    n: usize,
    construction_calls: u64,
}

impl VpTree {
    /// Builds the tree over all objects of `oracle`, consuming
    /// construction oracle calls. Vantage points are chosen
    /// deterministically (first element of each partition), so builds are
    /// reproducible.
    pub fn build<M: Metric>(oracle: &Oracle<M>) -> Self {
        let n = oracle.n();
        let start = oracle.calls();
        let mut ids: Vec<ObjectId> = (0..n as ObjectId).collect();
        let root = Self::build_node(oracle, &mut ids);
        VpTree {
            root,
            n,
            construction_calls: oracle.calls() - start,
        }
    }

    fn build_node<M: Metric>(oracle: &Oracle<M>, ids: &mut [ObjectId]) -> Option<Box<Node>> {
        let (&vantage, rest) = ids.split_first()?;
        if rest.is_empty() {
            return Some(Box::new(Node {
                vantage,
                mu: 0.0,
                inside: None,
                outside: None,
            }));
        }
        // Distance of every remaining point to the vantage (oracle calls).
        let mut with_d: Vec<(ObjectId, f64)> =
            rest.iter().map(|&x| (x, oracle.call(vantage, x))).collect();
        with_d.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let mid = (with_d.len() - 1) / 2;
        let mu = with_d[mid].1;
        let (ins, outs) = with_d.split_at(mid + 1);
        let mut inside_ids: Vec<ObjectId> = ins.iter().map(|&(x, _)| x).collect();
        let mut outside_ids: Vec<ObjectId> = outs.iter().map(|&(x, _)| x).collect();
        Some(Box::new(Node {
            vantage,
            mu,
            inside: Self::build_node(oracle, &mut inside_ids),
            outside: Self::build_node(oracle, &mut outside_ids),
        }))
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Oracle calls consumed by construction.
    pub fn construction_calls(&self) -> u64 {
        self.construction_calls
    }

    /// Exact k nearest neighbours of object `q` (excluding `q` itself),
    /// sorted by `(distance, id)` — the same tie rule as
    /// `prox_algos::knn_query`, so results are comparable one-to-one.
    pub fn knn<M: Metric>(
        &self,
        oracle: &Oracle<M>,
        q: ObjectId,
        k: usize,
    ) -> Vec<(ObjectId, f64)> {
        let k = k.min(self.n.saturating_sub(1));
        if k == 0 {
            return Vec::new();
        }
        // Max-heap of current best (worst on top) as a sorted Vec (k tiny).
        let mut best: Vec<(f64, ObjectId)> = Vec::with_capacity(k + 1);
        let mut tau = f64::INFINITY;
        self.search_knn(self.root.as_deref(), oracle, q, k, &mut best, &mut tau);
        best.into_iter().map(|(d, id)| (id, d)).collect()
    }

    fn search_knn<M: Metric>(
        &self,
        node: Option<&Node>,
        oracle: &Oracle<M>,
        q: ObjectId,
        k: usize,
        best: &mut Vec<(f64, ObjectId)>,
        tau: &mut f64,
    ) {
        let Some(node) = node else { return };
        let d = if node.vantage == q {
            0.0
        } else {
            oracle.call(q, node.vantage)
        };
        if node.vantage != q {
            let cand = (d, node.vantage);
            let pos = best.partition_point(|x| (x.0, x.1) < cand);
            best.insert(pos, cand);
            if best.len() > k {
                best.pop();
            }
            if best.len() == k {
                *tau = best.last().expect_invariant("k >= 1").0;
            }
        }
        // Visit the side containing q first, prune the other by tau.
        let (first, second) = if d <= node.mu {
            (node.inside.as_deref(), node.outside.as_deref())
        } else {
            (node.outside.as_deref(), node.inside.as_deref())
        };
        self.search_knn(first, oracle, q, k, best, tau);
        let boundary_gap = (d - node.mu).abs();
        if boundary_gap <= *tau + PRUNE_EPS {
            self.search_knn(second, oracle, q, k, best, tau);
        }
    }

    /// All objects within the closed ball `dist(q, ·) <= radius`
    /// (excluding `q`), ascending by id.
    pub fn range<M: Metric>(&self, oracle: &Oracle<M>, q: ObjectId, radius: f64) -> Vec<ObjectId> {
        let mut out = Vec::new();
        self.search_range(self.root.as_deref(), oracle, q, radius, &mut out);
        out.sort_unstable();
        out
    }

    fn search_range<M: Metric>(
        &self,
        node: Option<&Node>,
        oracle: &Oracle<M>,
        q: ObjectId,
        radius: f64,
        out: &mut Vec<ObjectId>,
    ) {
        let Some(node) = node else { return };
        let d = if node.vantage == q {
            0.0
        } else {
            oracle.call(q, node.vantage)
        };
        if node.vantage != q && d <= radius {
            out.push(node.vantage);
        }
        if d - radius <= node.mu + PRUNE_EPS {
            self.search_range(node.inside.as_deref(), oracle, q, radius, out);
        }
        if d + radius >= node.mu - PRUNE_EPS {
            self.search_range(node.outside.as_deref(), oracle, q, radius, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_core::FnMetric;

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn knn_exact_on_a_line() {
        let oracle = line_oracle(30);
        let tree = VpTree::build(&oracle);
        assert!(tree.construction_calls() > 0);
        let nb = tree.knn(&oracle, 10, 4);
        let ids: Vec<ObjectId> = nb.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![9, 11, 8, 12], "(distance, id) order");
    }

    #[test]
    fn knn_matches_brute_force() {
        let oracle = line_oracle(25);
        let tree = VpTree::build(&oracle);
        let gt = oracle.ground_truth();
        for q in 0..25u32 {
            let nb = tree.knn(&oracle, q, 3);
            // Brute force with the same (d, id) tie rule.
            let mut all: Vec<(f64, u32)> = (0..25u32)
                .filter(|&v| v != q)
                .map(|v| (prox_core::Metric::distance(gt, q, v), v))
                .collect();
            all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            let want: Vec<u32> = all[..3].iter().map(|&(_, v)| v).collect();
            let got: Vec<u32> = nb.iter().map(|&(id, _)| id).collect();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let oracle = line_oracle(20);
        let tree = VpTree::build(&oracle);
        let gt = oracle.ground_truth();
        for (q, radius) in [(0u32, 0.2), (10, 0.15), (19, 0.5)] {
            let got = tree.range(&oracle, q, radius);
            let want: Vec<u32> = (0..20u32)
                .filter(|&v| v != q && prox_core::Metric::distance(gt, q, v) <= radius)
                .collect();
            assert_eq!(got, want, "q {q} r {radius}");
        }
    }

    #[test]
    fn query_prunes_subtrees() {
        // A kNN query on a balanced VP-tree must touch far fewer nodes than n.
        let n = 200;
        let oracle = line_oracle(n);
        let tree = VpTree::build(&oracle);
        let before = oracle.calls();
        tree.knn(&oracle, 100, 2);
        let query_calls = oracle.calls() - before;
        assert!(
            query_calls < n as u64 / 2,
            "branch-and-bound should prune: {query_calls} calls for n={n}"
        );
    }

    #[test]
    fn single_object_tree() {
        let oracle = line_oracle(2);
        let tree = VpTree::build(&oracle);
        assert_eq!(tree.knn(&oracle, 0, 5), vec![(1, 1.0)]);
    }
}
