//! GNAT — Geometric Near-neighbor Access Tree (Brin, VLDB 1995).
//!
//! The multi-way Voronoi-style index the paper's related work cites
//! alongside the M-tree. Each node picks `degree` split points, assigns
//! every object to its nearest split point, and stores the **range table**
//! `[min, max]` of distances from each split point to each sibling group.
//! Search prunes a whole group whenever the query's distance to *some*
//! split point is incompatible with that group's stored range — triangle
//! reasoning on precomputed data, no extra oracle calls.

use prox_core::invariant::InvariantExt;
use prox_core::{Metric, ObjectId, Oracle};

/// Float-boundary slack, as in the other indexes.
const PRUNE_EPS: f64 = 1e-9;

#[derive(Clone, Debug)]
struct Node {
    /// Split points of this node.
    splits: Vec<ObjectId>,
    /// `ranges[i][j]` = (min, max) distance from `splits[i]` to any object
    /// stored under `splits[j]`'s group (including the split point itself).
    ranges: Vec<Vec<(f64, f64)>>,
    /// One child per split point: either a subtree or a leaf bucket.
    children: Vec<Child>,
}

#[derive(Clone, Debug)]
enum Child {
    Bucket(Vec<ObjectId>),
    Tree(usize),
}

/// A GNAT with configurable node degree and leaf bucket size.
#[derive(Clone, Debug)]
pub struct Gnat {
    nodes: Vec<Node>,
    root: Option<usize>,
    n: usize,
    construction_calls: u64,
}

impl Gnat {
    /// Builds the tree over all objects of `oracle`.
    ///
    /// Split points are chosen greedily (first object + farthest-first,
    /// like the LAESA landmark rule) for reproducibility.
    pub fn build<M: Metric>(oracle: &Oracle<M>, degree: usize, bucket: usize) -> Self {
        assert!(degree >= 2, "GNAT degree must be at least 2");
        let n = oracle.n();
        let start = oracle.calls();
        let mut gnat = Gnat {
            nodes: Vec::new(),
            root: None,
            n,
            construction_calls: 0,
        };
        let all: Vec<ObjectId> = (0..n as ObjectId).collect();
        gnat.root = Some(gnat.build_node(oracle, all, degree, bucket.max(1)));
        gnat.construction_calls = oracle.calls() - start;
        gnat
    }

    fn dist<M: Metric>(oracle: &Oracle<M>, a: ObjectId, b: ObjectId) -> f64 {
        if a == b {
            0.0
        } else {
            oracle.call(a, b)
        }
    }

    fn build_node<M: Metric>(
        &mut self,
        oracle: &Oracle<M>,
        objects: Vec<ObjectId>,
        degree: usize,
        bucket: usize,
    ) -> usize {
        // Farthest-first split points.
        let k = degree.min(objects.len());
        let mut splits = vec![objects[0]];
        let mut min_d: Vec<f64> = objects
            .iter()
            .map(|&o| Self::dist(oracle, objects[0], o))
            .collect();
        while splits.len() < k {
            let (far, _) = objects
                .iter()
                .enumerate()
                .filter(|(_, o)| !splits.contains(o))
                .max_by(|a, b| min_d[a.0].total_cmp(&min_d[b.0]))
                .expect_invariant("k <= len");
            let sp = objects[far];
            splits.push(sp);
            for (i, &o) in objects.iter().enumerate() {
                let d = Self::dist(oracle, sp, o);
                if d < min_d[i] {
                    min_d[i] = d;
                }
            }
        }

        // Assign objects to their nearest split point; fill range tables.
        let mut groups: Vec<Vec<ObjectId>> = vec![Vec::new(); splits.len()];
        let mut ranges = vec![vec![(f64::INFINITY, 0.0f64); splits.len()]; splits.len()];
        for &o in &objects {
            let dists: Vec<f64> = splits.iter().map(|&s| Self::dist(oracle, s, o)).collect();
            // A split point always belongs to its *own* group — under
            // duplicate objects the nearest-split rule could send it to an
            // earlier split at distance 0, and the range table of its own
            // group would then fail to cover it (an unsound prune).
            let g = match splits.iter().position(|&sp| sp == o) {
                Some(own) => own,
                None => {
                    dists
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.total_cmp(b.1).then_with(|| a.0.cmp(&b.0)))
                        .expect_invariant("non-empty splits")
                        .0
                }
            };
            if !splits.contains(&o) {
                groups[g].push(o);
            }
            for (i, &d) in dists.iter().enumerate() {
                let r = &mut ranges[i][g];
                r.0 = r.0.min(d);
                r.1 = r.1.max(d);
            }
        }

        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            splits: splits.clone(),
            ranges,
            children: Vec::new(),
        });
        let children: Vec<Child> = groups
            .into_iter()
            .map(|g| {
                if g.len() <= bucket {
                    Child::Bucket(g)
                } else {
                    Child::Tree(self.build_node(oracle, g, degree, bucket))
                }
            })
            .collect();
        self.nodes[node_idx].children = children;
        node_idx
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Oracle calls consumed by construction.
    pub fn construction_calls(&self) -> u64 {
        self.construction_calls
    }

    /// All objects within the closed ball `dist(q, ·) <= radius`
    /// (excluding `q`), ascending by id.
    pub fn range<M: Metric>(&self, oracle: &Oracle<M>, q: ObjectId, radius: f64) -> Vec<ObjectId> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_node(oracle, root, q, radius, &mut out);
        }
        out.sort_unstable();
        out
    }

    fn range_node<M: Metric>(
        &self,
        oracle: &Oracle<M>,
        idx: usize,
        q: ObjectId,
        radius: f64,
        out: &mut Vec<ObjectId>,
    ) {
        let node = &self.nodes[idx];
        let k = node.splits.len();
        let mut alive = vec![true; k];
        let mut d_split = vec![f64::NAN; k];

        // Evaluate split points one at a time; each measured distance both
        // tests the split point itself and prunes sibling groups via the
        // range table (the GNAT trick).
        for i in 0..k {
            if !alive[i] {
                continue;
            }
            let d = Self::dist(oracle, q, node.splits[i]);
            d_split[i] = d;
            if node.splits[i] != q && d <= radius {
                out.push(node.splits[i]);
            }
            for (j, a) in alive.iter_mut().enumerate() {
                if !*a {
                    continue;
                }
                let (lo, hi) = node.ranges[i][j];
                // Any object x in group j has d(split_i, x) in [lo, hi], so
                // d(q, x) >= d - hi and d(q, x) >= lo - d.
                if d - hi > radius + PRUNE_EPS || lo - d > radius + PRUNE_EPS {
                    *a = false;
                }
            }
        }
        for (j, a) in alive.iter().enumerate() {
            if !*a {
                continue;
            }
            match &node.children[j] {
                Child::Bucket(items) => {
                    for &o in items {
                        if o != q && Self::dist(oracle, q, o) <= radius {
                            out.push(o);
                        }
                    }
                }
                Child::Tree(t) => self.range_node(oracle, *t, q, radius, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_core::FnMetric;

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn range_matches_brute_force() {
        let oracle = line_oracle(80);
        let g = Gnat::build(&oracle, 4, 6);
        let gt = oracle.ground_truth();
        for (q, radius) in [(0u32, 0.2), (40, 0.1), (79, 0.04), (25, 0.0)] {
            let got = g.range(&oracle, q, radius);
            let want: Vec<u32> = (0..80u32)
                .filter(|&v| v != q && prox_core::Metric::distance(gt, q, v) <= radius)
                .collect();
            assert_eq!(got, want, "q {q} r {radius}");
        }
    }

    #[test]
    fn range_table_prunes_groups() {
        let n = 400;
        let oracle = line_oracle(n);
        let g = Gnat::build(&oracle, 8, 8);
        let before = oracle.calls();
        g.range(&oracle, 200, 0.01);
        let calls = oracle.calls() - before;
        assert!(
            calls < n as u64 / 3,
            "range tables should prune most groups: {calls} calls"
        );
    }

    #[test]
    fn small_inputs() {
        let oracle = line_oracle(3);
        let g = Gnat::build(&oracle, 4, 2);
        assert_eq!(g.len(), 3);
        assert_eq!(g.range(&oracle, 0, 1.0), vec![1, 2]);
    }
}
