//! Cross-scheme invariants on randomized metric instances.
//!
//! These properties are the backbone of the reproduction:
//!
//! * every scheme's bounds are **sound** (`lb ≤ d ≤ ub`);
//! * SPLUB and ADM produce **identical** (tightest) bounds — the paper's
//!   headline claim in §5.2(2);
//! * Tri Scheme is never tighter than SPLUB (it explores a path subset);
//! * recording collapses a pair's bounds to the exact value.

use prox_bounds::{Adm, BoundScheme, GoalBounds, Splub, TriScheme, DECISION_EPS};
use prox_core::{FnMetric, Metric, Pair, QueryGoal};
use prox_datasets::testgen::{property, PlanarInstance};

#[test]
fn bounds_sound_and_tightness_ordered() {
    property(0x5EED_0001, 64, |rng| {
        let inst = PlanarInstance::draw(rng, 4, 12, 1.0);
        let n = inst.n();
        let metric = inst.metric();

        let mut tri = TriScheme::new(n, 1.0);
        let mut splub = Splub::new(n, 1.0);
        let mut adm = Adm::new(n, 1.0);

        for &(a, b) in &inst.edges {
            let p = Pair::new(a, b);
            let d = metric.distance(a, b);
            tri.record(p, d);
            splub.record(p, d);
            adm.record(p, d);
        }

        for q in Pair::all(n) {
            let d = metric.distance(q.lo(), q.hi());
            let (tl, tu) = tri.bounds(q);
            let (sl, su) = splub.bounds(q);
            let (al, au) = adm.bounds(q);

            // Soundness for every scheme.
            for (name, l, u) in [("tri", tl, tu), ("splub", sl, su), ("adm", al, au)] {
                assert!(l <= d + 1e-9, "{name} {q:?}: lb {l} > d {d}");
                assert!(u >= d - 1e-9, "{name} {q:?}: ub {u} < d {d}");
                assert!(l <= u + 1e-9, "{name} {q:?}: lb {l} > ub {u}");
            }

            // SPLUB == ADM: both compute the tightest path bounds.
            assert!((sl - al).abs() < 1e-9, "{q:?}: splub lb {sl} vs adm {al}");
            assert!((su - au).abs() < 1e-9, "{q:?}: splub ub {su} vs adm {au}");

            // Tri is never tighter than SPLUB.
            assert!(
                tl <= sl + 1e-9,
                "{q:?}: tri lb {tl} tighter than splub {sl}"
            );
            assert!(
                tu >= su - 1e-9,
                "{q:?}: tri ub {tu} tighter than splub {su}"
            );
        }
    });
}

#[test]
fn record_collapses_bounds() {
    property(0x5EED_0002, 64, |rng| {
        let inst = PlanarInstance::draw(rng, 4, 12, 1.0);
        let n = inst.n();
        let metric = inst.metric();
        let mut splub = Splub::new(n, 1.0);
        let mut tri = TriScheme::new(n, 1.0);
        let mut adm = Adm::new(n, 1.0);
        for &(a, b) in &inst.edges {
            let p = Pair::new(a, b);
            let d = metric.distance(a, b);
            for s in [&mut tri as &mut dyn BoundScheme, &mut splub, &mut adm] {
                s.record(p, d);
                let (lb, ub) = s.bounds(p);
                assert!(
                    (lb - d).abs() < 1e-12 && (ub - d).abs() < 1e-12,
                    "{} {p:?} bounds did not collapse: ({lb}, {ub}) vs {d}",
                    s.name()
                );
                assert!(s.known(p).is_some());
            }
        }
    });
}

/// Interleaved update/query fuzz for SPLUB's incremental tree maintenance
/// (DESIGN.md §13): across 1k random schedules, a long-lived SPLUB that
/// repairs its shortest-path trees incrementally must stay **bitwise**
/// identical to a from-scratch SPLUB rebuilt at every step, and both must
/// agree with the ADM baseline to the cross-scheme tolerance (ADM reaches
/// the same tightest bounds through a different float-operation order, so
/// cross-*algorithm* equality is 1e-9, not bitwise — the same pin as
/// `bounds_sound_and_tightness_ordered`).
///
/// The same sweep checks the cascade: at random thresholds, a Decisive
/// answer from `bounds_for_goal` must decide the comparison exactly as the
/// exact sandwich would (both `<` and `≤` probes, `DECISION_EPS` margins).
#[test]
fn interleaved_updates_incremental_equals_scratch_and_adm() {
    property(0x5EED_0013, 1000, |rng| {
        let inst = PlanarInstance::draw(rng, 4, 12, 1.0);
        let n = inst.n();
        let metric = inst.metric();

        let mut live = Splub::new(n, 1.0);
        let mut adm = Adm::new(n, 1.0);
        let mut recorded: Vec<(Pair, f64)> = Vec::new();

        for &(a, b) in &inst.edges {
            let p = Pair::new(a, b);
            let d = metric.distance(a, b);
            live.record(p, d);
            adm.record(p, d);
            recorded.push((p, d));

            for _ in 0..2 {
                let qa = rng.below(n) as u32;
                let qb = rng.below(n) as u32;
                if qa == qb {
                    continue;
                }
                let q = Pair::new(qa, qb);
                let (li, ui) = live.bounds(q);
                let mut scratch = Splub::new(n, 1.0);
                for &(e, w) in &recorded {
                    scratch.record(e, w);
                }
                let (ls, us) = scratch.bounds(q);
                assert_eq!(
                    li.to_bits(),
                    ls.to_bits(),
                    "{q:?}: incremental lb {li} != from-scratch {ls}"
                );
                assert_eq!(
                    ui.to_bits(),
                    us.to_bits(),
                    "{q:?}: incremental ub {ui} != from-scratch {us}"
                );
                let (la, ua) = adm.bounds(q);
                assert!((li - la).abs() < 1e-9, "{q:?}: splub lb {li} vs adm {la}");
                assert!((ui - ua).abs() < 1e-9, "{q:?}: splub ub {ui} vs adm {ua}");

                if live.known(q).is_none() {
                    let v = rng.unit_f64();
                    if let GoalBounds::Decisive { lb, ub, .. } =
                        live.bounds_for_goal(q, QueryGoal::threshold(v))
                    {
                        for (relaxed, exact) in [
                            (ub < v - DECISION_EPS, us < v - DECISION_EPS),
                            (lb >= v + DECISION_EPS, ls >= v + DECISION_EPS),
                            (ub <= v - DECISION_EPS, us <= v - DECISION_EPS),
                            (lb > v + DECISION_EPS, ls > v + DECISION_EPS),
                        ] {
                            assert_eq!(
                                relaxed, exact,
                                "{q:?} v={v}: cascade verdict diverged from exact tier"
                            );
                        }
                    }
                }
            }
        }
    });
}

/// Retraction interleavings: retract + re-record cycles must leave an
/// incremental SPLUB bitwise identical to a from-scratch rebuild (the
/// repair path is barred across a retraction and the trees rebuilt).
#[test]
fn retract_schedules_keep_incremental_splub_bit_exact() {
    property(0x5EED_0014, 200, |rng| {
        let inst = PlanarInstance::draw(rng, 4, 10, 1.0);
        if inst.edges.is_empty() {
            return;
        }
        let n = inst.n();
        let metric = inst.metric();

        let mut live = Splub::new(n, 1.0);
        for &(a, b) in &inst.edges {
            live.record(Pair::new(a, b), metric.distance(a, b));
        }
        // A few retract / query / re-record rounds.
        for _ in 0..4 {
            let &(a, b) = &inst.edges[rng.below(inst.edges.len())];
            let victim = Pair::new(a, b);
            let had = live.known(victim).is_some();
            assert_eq!(live.retract(victim), had);
            for q in Pair::all(n).step_by(3) {
                let (li, ui) = live.bounds(q);
                let mut scratch = Splub::new(n, 1.0);
                for &(e, w) in live.graph().edges() {
                    scratch.record(e, w);
                }
                let (ls, us) = scratch.bounds(q);
                assert_eq!(li.to_bits(), ls.to_bits(), "{q:?} lb after retract");
                assert_eq!(ui.to_bits(), us.to_bits(), "{q:?} ub after retract");
            }
            live.record(victim, metric.distance(a, b));
        }
    });
}

/// Theorem 4.2 sanity: the expected Tri lookup cost for a uniformly random
/// unknown edge is `O(m/n)`. The merge in `bounds(a, b)` walks
/// `deg(a) + deg(b)` adjacency entries, so the empirical mean of that sum
/// must track `4m/n` (the theorem's bound) within a small constant.
#[test]
fn tri_expected_lookup_cost_tracks_m_over_n() {
    let n = 200;
    // Seeded pseudo-random edge generator.
    let mut state = 0xfeed_f00d_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut tri = TriScheme::new(n, 1.0);
    let mut ratios = Vec::new();
    for target_m in [200usize, 800, 3200] {
        while tri.m() < target_m {
            let a = next() % n as u32;
            let b = next() % n as u32;
            if a != b {
                tri.record(Pair::new(a, b), 0.5);
            }
        }
        let m = tri.m() as f64;
        // Mean deg(a) + deg(b) over sampled unknown pairs.
        let mut total = 0usize;
        let mut cnt = 0usize;
        for _ in 0..2000 {
            let a = next() % n as u32;
            let b = next() % n as u32;
            if a == b || tri.known(Pair::new(a, b)).is_some() {
                continue;
            }
            total += tri.graph().degree(a) + tri.graph().degree(b);
            cnt += 1;
        }
        let mean = total as f64 / cnt as f64;
        let bound = 4.0 * m / n as f64;
        assert!(
            mean <= bound * 1.5,
            "m={m}: mean lookup work {mean} exceeds 1.5 × (4m/n) = {}",
            bound * 1.5
        );
        ratios.push(mean / (m / n as f64));
    }
    // The normalized cost stays bounded as m grows (no super-linear blowup).
    let (first, last) = (ratios[0], ratios[ratios.len() - 1]);
    assert!(
        last < first * 2.0,
        "normalized lookup cost should stay O(1): {ratios:?}"
    );
}

/// Deterministic regression: the full closure matters. A chain plus a long
/// edge exercises multi-hop UB propagation and wrap LBs simultaneously.
#[test]
fn chain_with_long_edge_all_schemes_agree() {
    // 6 points on a line at x = 0, .1, .2, .3, .4, 1.0 (scaled by sqrt2 in
    // planar_metric — use raw coordinates instead for exactness).
    let xs: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 1.0];
    let n = xs.len();
    let metric = FnMetric::new(n, 1.0, move |a, b| (xs[a as usize] - xs[b as usize]).abs());

    let mut splub = Splub::new(n, 1.0);
    let mut adm = Adm::new(n, 1.0);
    // Resolve the chain and the long edge (0,5).
    let mut edges: Vec<Pair> = (0..n as u32 - 1).map(|i| Pair::new(i, i + 1)).collect();
    edges.push(Pair::new(0, 5));
    for &p in &edges {
        let d = metric.distance(p.lo(), p.hi());
        splub.record(p, d);
        adm.record(p, d);
    }
    for q in Pair::all(n) {
        let d = metric.distance(q.lo(), q.hi());
        let (sl, su) = splub.bounds(q);
        let (al, au) = adm.bounds(q);
        assert!((sl - al).abs() < 1e-12, "{q:?} lb {sl} vs {al}");
        assert!((su - au).abs() < 1e-12, "{q:?} ub {su} vs {au}");
        assert!(sl <= d + 1e-12 && d <= su + 1e-12);
        // On a line with a spanning chain resolved, path bounds are exact.
        assert!((sl - d).abs() < 1e-9, "{q:?}: lb {sl} should equal {d}");
        assert!((su - d).abs() < 1e-9, "{q:?}: ub {su} should equal {d}");
    }
}
