//! LAESA as a pair-bound scheme (baseline; Micó, Oncina, Vidal 1994).

use std::collections::BTreeMap;

use prox_core::Pair;

use crate::{Bootstrap, BoundScheme};

/// Landmark-row bounds.
///
/// LAESA precomputes the distances from `k` pivots to every object; for an
/// unknown pair `(a, b)` the pivot rows give
///
/// ```text
/// LB = max over pivots p of |d(p, a) − d(p, b)|
/// UB = min over pivots p of  d(p, a) + d(p, b)
/// ```
///
/// Queries are `O(k)`; updates only memoize the resolved value — the pivot
/// bounds themselves are **static**, which is the scheme's weakness relative
/// to Tri/SPLUB: distances resolved during the run never tighten future
/// bounds (§4.2 "Bootstrapping", §5.4.1 "Limitation of LAESA and TLAESA").
#[derive(Clone, Debug)]
pub struct Laesa {
    n: usize,
    max_distance: f64,
    rows: Vec<Box<[f64]>>,
    /// Maps an object to its pivot index, if it is one.
    pivot_index: BTreeMap<u32, usize>,
    resolved: BTreeMap<u64, f64>,
}

impl Laesa {
    /// Builds the scheme from a completed [`Bootstrap`]. The bootstrap's
    /// pivot-row edges are pre-seeded into the resolved cache, so pairs
    /// involving a pivot are served exactly.
    pub fn new(max_distance: f64, bootstrap: &Bootstrap) -> Self {
        let mut resolved = BTreeMap::new();
        for (p, d) in bootstrap.edges() {
            resolved.insert(p.key(), d);
        }
        let pivot_index = bootstrap
            .pivots
            .iter()
            .enumerate()
            .map(|(t, &p)| (p, t))
            .collect();
        Laesa {
            n: bootstrap.n(),
            max_distance,
            rows: bootstrap.rows.clone(),
            pivot_index,
            resolved,
        }
    }

    /// Number of pivots.
    pub fn k(&self) -> usize {
        self.rows.len()
    }

    /// Ids of the landmark objects.
    pub fn pivot_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.pivot_index.keys().copied()
    }

    /// Every exact distance the scheme holds (pivot rows + recordings),
    /// e.g. for persisting a resolved-distance cache across runs.
    pub fn resolved_edges(&self) -> impl Iterator<Item = (Pair, f64)> + '_ {
        self.resolved
            .iter()
            .map(|(&key, &d)| (Pair::from_key(key), d))
    }
}

impl BoundScheme for Laesa {
    fn n(&self) -> usize {
        self.n
    }

    fn max_distance(&self) -> f64 {
        self.max_distance
    }

    fn known(&self, p: Pair) -> Option<f64> {
        self.resolved.get(&p.key()).copied()
    }

    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        if let Some(d) = self.known(p) {
            return (d, d);
        }
        let (a, b) = (p.lo() as usize, p.hi() as usize);
        let mut lb = 0.0f64;
        let mut ub = self.max_distance;
        for row in &self.rows {
            let (da, db) = (row[a], row[b]);
            lb = lb.max((da - db).abs());
            ub = ub.min(da + db);
        }
        if lb > ub {
            lb = ub;
        }
        (lb, ub)
    }

    fn record(&mut self, p: Pair, d: f64) {
        self.resolved.insert(p.key(), d);
    }

    fn m(&self) -> usize {
        self.resolved.len()
    }

    fn name(&self) -> &'static str {
        "LAESA"
    }

    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        for (p, d) in self.resolved_edges() {
            f(p, d);
        }
    }
}

// Used by `Tlaesa` too.
pub(crate) fn pivot_list_bounds(
    list_a: &[(u32, f64)],
    list_b: &[(u32, f64)],
    max_distance: f64,
) -> (f64, f64) {
    let mut lb = 0.0f64;
    let mut ub = max_distance;
    let (mut i, mut j) = (0, 0);
    while i < list_a.len() && j < list_b.len() {
        let (pa, da) = list_a[i];
        let (pb, db) = list_b[j];
        match pa.cmp(&pb) {
            std::cmp::Ordering::Equal => {
                lb = lb.max((da - db).abs());
                ub = ub.min(da + db);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    if lb > ub {
        lb = ub;
    }
    (lb, ub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select_maxmin_pivots;
    use prox_core::{FnMetric, Metric, ObjectId, Oracle};

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    fn scheme(n: usize, k: usize) -> (Laesa, Oracle<impl Metric>) {
        let oracle = line_oracle(n);
        let b = select_maxmin_pivots(&oracle, k, 11);
        (Laesa::new(1.0, &b), oracle)
    }

    #[test]
    fn bounds_are_sound_on_a_line() {
        let (mut s, oracle) = scheme(40, 4);
        for p in Pair::all(40) {
            let (lb, ub) = s.bounds(p);
            let d = oracle.ground_truth().distance(p.lo(), p.hi());
            assert!(lb <= d + 1e-12, "{p:?}: lb {lb} > d {d}");
            assert!(ub >= d - 1e-12, "{p:?}: ub {ub} < d {d}");
        }
    }

    #[test]
    fn pivot_pairs_are_exact() {
        let (mut s, oracle) = scheme(30, 3);
        let pivots: Vec<u32> = s.pivot_ids().collect();
        for &pv in &pivots {
            let other = if pv == 0 { 1 } else { 0 };
            let p = Pair::new(pv, other);
            let d = oracle.ground_truth().distance(pv, other);
            let (lb, ub) = s.bounds(p);
            assert!((lb - d).abs() < 1e-12 && (ub - d).abs() < 1e-12);
        }
    }

    #[test]
    fn line_pivots_give_tight_lb() {
        // On a line with extreme pivots, |d(p,a) − d(p,b)| equals the true
        // distance: LAESA's LB is exact for 1-D data.
        let (mut s, oracle) = scheme(64, 2);
        for p in [Pair::new(10, 50), Pair::new(3, 4), Pair::new(0, 63)] {
            let d = oracle.ground_truth().distance(p.lo(), p.hi());
            let (lb, _) = s.bounds(p);
            assert!((lb - d).abs() < 1e-9, "{p:?}: lb {lb} vs d {d}");
        }
    }

    #[test]
    fn record_memoizes_but_does_not_tighten_others() {
        let (mut s, _) = scheme(30, 2);
        let q = Pair::new(5, 6);
        let before = s.bounds(q);
        // Resolving an unrelated pair must not move (5,6)'s bounds: LAESA is
        // static — this is exactly its documented limitation.
        s.record(Pair::new(20, 21), 0.016);
        assert_eq!(s.bounds(q), before);
        // But the pair itself is served exactly once recorded.
        s.record(q, 0.0161);
        assert_eq!(s.bounds(q), (0.0161, 0.0161));
    }

    #[test]
    fn pivot_list_bounds_merges_sorted_lists() {
        let a = [(1u32, 0.5), (4, 0.2), (9, 0.7)];
        let b = [(2u32, 0.9), (4, 0.9), (9, 0.1)];
        // Common pivots 4 and 9: lb = max(0.7, 0.6) = 0.7, ub = min(1.1, 0.8).
        let (lb, ub) = pivot_list_bounds(&a, &b, 1.0);
        assert!((lb - 0.7).abs() < 1e-12);
        assert!((ub - 0.8).abs() < 1e-12);
    }
}
