//! Tri Scheme over `BTreeMap` adjacency — the paper's literal data
//! structure, kept as an ablation against the sorted-`Vec` default.

use std::collections::BTreeMap;

use prox_core::{ObjectId, Pair};

use crate::BoundScheme;

/// [`crate::TriScheme`] with each adjacency list stored in a balanced
/// search tree, exactly as §4.2.1 describes (`O(log n)` insertion, ordered
/// iteration for the triangle merge).
///
/// Bounds are **identical** to the sorted-`Vec` implementation — only the
/// constants differ; the `tri_adjacency` bench quantifies the gap (the flat
/// vector wins on query-heavy workloads thanks to cache locality, the tree
/// wins on insert-heavy ones at large degree).
#[derive(Clone, Debug)]
pub struct TriBTreeScheme {
    adj: Vec<BTreeMap<ObjectId, f64>>,
    max_distance: f64,
    m: usize,
}

impl TriBTreeScheme {
    /// An empty scheme over `n` objects with distances in
    /// `[0, max_distance]`.
    pub fn new(n: usize, max_distance: f64) -> Self {
        TriBTreeScheme {
            adj: vec![BTreeMap::new(); n],
            max_distance,
            m: 0,
        }
    }
}

impl BoundScheme for TriBTreeScheme {
    fn n(&self) -> usize {
        self.adj.len()
    }

    fn max_distance(&self) -> f64 {
        self.max_distance
    }

    fn known(&self, p: Pair) -> Option<f64> {
        self.adj[p.lo() as usize].get(&p.hi()).copied()
    }

    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        if let Some(d) = self.known(p) {
            return (d, d);
        }
        let (a, b) = p.ends();
        let mut lb = 0.0f64;
        let mut ub = self.max_distance;
        // Ordered merge of the two trees' key streams.
        let mut ia = self.adj[a as usize].iter();
        let mut ib = self.adj[b as usize].iter();
        let (mut ca, mut cb) = (ia.next(), ib.next());
        while let (Some((&ka, &da)), Some((&kb, &db))) = (ca, cb) {
            match ka.cmp(&kb) {
                std::cmp::Ordering::Equal => {
                    lb = lb.max((da - db).abs());
                    ub = ub.min(da + db);
                    ca = ia.next();
                    cb = ib.next();
                }
                std::cmp::Ordering::Less => ca = ia.next(),
                std::cmp::Ordering::Greater => cb = ib.next(),
            }
        }
        if lb > ub {
            lb = ub;
        }
        (lb, ub)
    }

    fn record(&mut self, p: Pair, d: f64) {
        let (a, b) = p.ends();
        if self.adj[a as usize].insert(b, d).is_none() {
            self.adj[b as usize].insert(a, d);
            self.m += 1;
        }
    }

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> &'static str {
        "Tri(BTree)"
    }

    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        for (a, list) in self.adj.iter().enumerate() {
            for (&b, &d) in list {
                if (a as ObjectId) < b {
                    f(Pair::new(a as ObjectId, b), d);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TriScheme;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn identical_bounds_to_vec_variant() {
        let n = 24;
        let mut vec_tri = TriScheme::new(n, 1.0);
        let mut btree_tri = TriBTreeScheme::new(n, 1.0);
        // A deterministic pseudo-random metric: points on a circle.
        let d = |a: u32, b: u32| {
            let t = |i: u32| 2.0 * std::f64::consts::PI * f64::from(i) / n as f64;
            ((t(a) - t(b)).sin().abs() / 2.0 + (t(a) - t(b)).cos().abs() / 4.0).min(1.0)
        };
        for (i, e) in Pair::all(n).enumerate() {
            if i % 3 != 0 {
                continue;
            }
            let w = d(e.lo(), e.hi());
            vec_tri.record(e, w);
            btree_tri.record(e, w);
        }
        assert_eq!(vec_tri.m(), btree_tri.m());
        for q in Pair::all(n) {
            let (vl, vu) = vec_tri.bounds(q);
            let (bl, bu) = btree_tri.bounds(q);
            assert_eq!(vl, bl, "{q:?} lb");
            assert_eq!(vu, bu, "{q:?} ub");
        }
    }

    #[test]
    fn duplicate_record_is_idempotent() {
        let mut s = TriBTreeScheme::new(4, 1.0);
        s.record(p(0, 1), 0.5);
        s.record(p(1, 0), 0.5);
        assert_eq!(s.m(), 1);
        assert_eq!(s.known(p(0, 1)), Some(0.5));
    }

    #[test]
    fn paper_example_single_triangle() {
        let mut s = TriBTreeScheme::new(7, 1.0);
        s.record(p(1, 3), 0.8);
        s.record(p(3, 4), 0.1);
        let (lb, ub) = s.bounds(p(1, 4));
        assert!((lb - 0.7).abs() < 1e-12);
        assert!((ub - 0.9).abs() < 1e-12);
    }
}
