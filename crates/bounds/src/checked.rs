//! `CheckedResolver` — the paranoid cross-checking layer (feature
//! `paranoid`).
//!
//! Wraps any [`DistanceResolver`] together with a ground-truth closure and
//! audits, on every operation, the three invariants the whole framework
//! rests on (`docs/INVARIANTS.md`):
//!
//! 1. **Sandwich**: every emitted bound satisfies
//!    `LB − ε ≤ dist(p) ≤ UB + ε`.
//! 2. **Monotone tightening**: for a given pair, lower bounds never loosen
//!    downward and upper bounds never loosen upward over the run.
//! 3. **Decision soundness**: every `Some(_)` verdict from a `try_*` method
//!    agrees with the exact comparison, except within the documented
//!    [`DECISION_EPS`] tie window; `resolve`/`known`/`preload`/
//!    `export_known` values must equal the truth *exactly*.
//!
//! The wrapper changes no verdict and no resolved value, so a plugged run
//! under `CheckedResolver` is byte-identical to the same run without it —
//! it only panics (through [`prox_core::invariant`]) when the wrapped
//! resolver breaks a guarantee. It pays one truth evaluation per audit, so
//! it is strictly a test/debug tool; the `paranoid` feature keeps it out of
//! normal builds.

use std::cell::Cell;
use std::collections::BTreeMap;

use prox_core::invariant;
use prox_core::{Pair, PruneStats, SpecBounds};

use crate::{DistanceResolver, DECISION_EPS};

/// A [`DistanceResolver`] that audits another against the exact truth.
///
/// `truth` must return the exact oracle distance without being metered —
/// typically `|p| oracle.ground_truth().distance(p.lo(), p.hi())`.
pub struct CheckedResolver<R, F> {
    inner: R,
    truth: F,
    /// Tightest `(lb, ub)` observed per pair, for the monotonicity audit.
    tightest: BTreeMap<u64, (f64, f64)>,
    checks: Cell<u64>,
}

impl<R: DistanceResolver, F: Fn(Pair) -> f64> CheckedResolver<R, F> {
    /// Wraps `inner`, auditing every operation against `truth`.
    pub fn new(inner: R, truth: F) -> Self {
        CheckedResolver {
            inner,
            truth,
            tightest: BTreeMap::new(),
            checks: Cell::new(0),
        }
    }

    /// Number of audits performed so far.
    pub fn checks(&self) -> u64 {
        self.checks.get()
    }

    /// Unwraps the audited resolver.
    pub fn into_inner(self) -> R {
        self.inner
    }

    fn count(&self) {
        self.checks.set(self.checks.get() + 1);
    }

    /// Audits the sandwich and monotone-tightening invariants for bounds
    /// emitted for `p`.
    fn audit_bounds(&mut self, p: Pair, lb: f64, ub: f64, ctx: &str) {
        self.count();
        let d = (self.truth)(p);
        invariant!(
            lb - DECISION_EPS <= d && d <= ub + DECISION_EPS,
            "{ctx}: bounds [{lb}, {ub}] for {p:?} do not sandwich true {d}"
        );
        let entry = self.tightest.entry(p.key()).or_insert((lb, ub));
        invariant!(
            lb >= entry.0 - DECISION_EPS && ub <= entry.1 + DECISION_EPS,
            "{ctx}: bounds [{lb}, {ub}] for {p:?} loosened past [{}, {}]",
            entry.0,
            entry.1
        );
        entry.0 = entry.0.max(lb);
        entry.1 = entry.1.min(ub);
    }

    /// Audits a `Some(claim)` verdict for `lhs < rhs` (or `lhs <= rhs` when
    /// `strict` is false): disagreement with the exact comparison is only
    /// tolerated inside the `tol` tie window.
    fn audit_verdict(&self, claim: bool, lhs: f64, rhs: f64, strict: bool, tol: f64, ctx: &str) {
        self.count();
        let actual = if strict { lhs < rhs } else { lhs <= rhs };
        if claim != actual {
            invariant!(
                (lhs - rhs).abs() <= tol,
                "{ctx}: claimed {claim} but exact comparison of {lhs} vs {rhs} says {actual}"
            );
        }
    }

    /// Audits a value the resolver presents as the exact distance.
    fn audit_exact(&self, p: Pair, d: f64, ctx: &str) {
        self.count();
        let t = (self.truth)(p);
        invariant!(
            d == t,
            "{ctx}: presented {d} as the exact distance of {p:?}, truth is {t}"
        );
    }

    fn sum(&self, x: (Pair, Pair)) -> f64 {
        (self.truth)(x.0) + (self.truth)(x.1)
    }
}

impl<R: DistanceResolver, F: Fn(Pair) -> f64> DistanceResolver for CheckedResolver<R, F> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn max_distance(&self) -> f64 {
        self.inner.max_distance()
    }

    fn known(&self, p: Pair) -> Option<f64> {
        let k = self.inner.known(p);
        if let Some(d) = k {
            self.audit_exact(p, d, "known");
        }
        k
    }

    fn resolve(&mut self, p: Pair) -> f64 {
        let d = self.inner.resolve(p);
        self.audit_exact(p, d, "resolve");
        d
    }

    fn resolve_fallible(&mut self, p: Pair) -> Result<f64, prox_core::OracleError> {
        // Errors pass through unaudited (there is no value to check);
        // successful resolutions are held to the exact-truth standard.
        let d = self.inner.resolve_fallible(p)?;
        self.audit_exact(p, d, "resolve_fallible");
        Ok(d)
    }

    fn try_less(&mut self, x: Pair, y: Pair) -> Option<bool> {
        let v = self.inner.try_less(x, y);
        if let Some(b) = v {
            let (dx, dy) = ((self.truth)(x), (self.truth)(y));
            self.audit_verdict(b, dx, dy, true, 2.0 * DECISION_EPS, "try_less");
        }
        v
    }

    fn try_less_value(&mut self, x: Pair, v: f64) -> Option<bool> {
        let r = self.inner.try_less_value(x, v);
        if let Some(b) = r {
            self.audit_verdict(
                b,
                (self.truth)(x),
                v,
                true,
                2.0 * DECISION_EPS,
                "try_less_value",
            );
        }
        r
    }

    fn try_leq_value(&mut self, x: Pair, v: f64) -> Option<bool> {
        let r = self.inner.try_leq_value(x, v);
        if let Some(b) = r {
            self.audit_verdict(
                b,
                (self.truth)(x),
                v,
                false,
                2.0 * DECISION_EPS,
                "try_leq_value",
            );
        }
        r
    }

    fn try_less_sum2(&mut self, x: (Pair, Pair), y: (Pair, Pair)) -> Option<bool> {
        let r = self.inner.try_less_sum2(x, y);
        if let Some(b) = r {
            let (sx, sy) = (self.sum(x), self.sum(y));
            self.audit_verdict(b, sx, sy, true, 4.0 * DECISION_EPS, "try_less_sum2");
        }
        r
    }

    fn try_sum_less_value(&mut self, terms: &[Pair], v: f64) -> Option<bool> {
        let r = self.inner.try_sum_less_value(terms, v);
        if let Some(b) = r {
            let s: f64 = terms.iter().map(|&t| (self.truth)(t)).sum();
            let tol = DECISION_EPS * 2.0 * terms.len().max(1) as f64;
            self.audit_verdict(b, s, v, true, tol, "try_sum_less_value");
        }
        r
    }

    fn lower_bound_hint(&mut self, x: Pair) -> f64 {
        let lb = self.inner.lower_bound_hint(x);
        let ub = self.inner.max_distance();
        self.audit_bounds(x, lb, ub, "lower_bound_hint");
        lb
    }

    fn bounds_hint(&mut self, x: Pair) -> (f64, f64) {
        let (lb, ub) = self.inner.bounds_hint(x);
        self.audit_bounds(x, lb, ub, "bounds_hint");
        (lb, ub)
    }

    fn preload(&mut self, p: Pair, d: f64) {
        self.audit_exact(p, d, "preload");
        self.inner.preload(p, d);
    }

    fn preload_weak(&mut self, p: Pair, d: f64) {
        self.audit_exact(p, d, "preload_weak");
        self.inner.preload_weak(p, d);
    }

    fn provenance(&self) -> prox_obs::ProvenanceLedger {
        self.inner.provenance()
    }

    fn export_known(&self, out: &mut Vec<(Pair, f64)>) {
        let from = out.len();
        self.inner.export_known(out);
        for &(p, d) in &out[from..] {
            self.audit_exact(p, d, "export_known");
        }
    }

    fn corruption_stats(&self) -> crate::CorruptionStats {
        self.inner.corruption_stats()
    }

    fn weak_stats(&self) -> crate::WeakStats {
        self.inner.weak_stats()
    }

    fn degradation(&self) -> Option<prox_core::Degradation> {
        self.inner.degradation()
    }

    fn prune_stats(&self) -> PruneStats {
        self.inner.prune_stats()
    }

    fn prune_stats_mut(&mut self) -> &mut PruneStats {
        self.inner.prune_stats_mut()
    }

    // The speculate/commit protocol hooks forward unchanged: speculative
    // values are only reused when they bitwise equal what the inner
    // resolver would produce, so the audit stream loses some probes (the
    // reused ones) but every value that *is* probed is still audited. The
    // monotonicity ledger only ever gets laxer from a skipped probe, so no
    // false alarms can result.
    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn pair_stamp(&self, x: Pair) -> u64 {
        self.inner.pair_stamp(x)
    }

    fn spec(&self) -> Option<&dyn SpecBounds> {
        self.inner.spec()
    }

    // Observation handles forward untouched: the audit layer emits no
    // events of its own (its oracle calls go through the `truth` closure,
    // not the metered path), so a paranoid run traces identically to an
    // unchecked one.
    fn trace_sink(&self) -> Option<std::rc::Rc<dyn prox_obs::TraceSink>> {
        self.inner.trace_sink()
    }

    fn obs_metrics(&self) -> Option<std::rc::Rc<prox_obs::Metrics>> {
        self.inner.obs_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundResolver, TriScheme};
    use prox_core::{MatrixMetric, Metric, Oracle, PairMap};

    /// Four points on a line at 0, 0.1, 0.35, 0.9 (distances scaled to 1).
    fn line_metric() -> MatrixMetric {
        let xs: [f64; 4] = [0.0, 0.1, 0.35, 0.9];
        let mut d = PairMap::new(xs.len(), 0.0);
        for p in Pair::all(xs.len()) {
            d.set(p, (xs[p.hi() as usize] - xs[p.lo() as usize]).abs());
        }
        MatrixMetric::new(d, 1.0)
    }

    #[test]
    fn audits_a_sound_resolver_silently() {
        let metric = line_metric();
        let oracle = Oracle::new(&metric);
        let inner = BoundResolver::new(&oracle, TriScheme::new(4, 1.0));
        let truth = |p: Pair| oracle.ground_truth().distance(p.lo(), p.hi());
        let mut r = CheckedResolver::new(inner, truth);

        let d = r.resolve(Pair::new(0, 1));
        assert_eq!(d, 0.1);
        assert_eq!(r.known(Pair::new(0, 1)), Some(0.1));
        let _ = r.try_less(Pair::new(0, 1), Pair::new(0, 3));
        let _ = r.try_less_value(Pair::new(0, 1), 0.5);
        let _ = r.bounds_hint(Pair::new(1, 3));
        let _ = r.less(Pair::new(0, 1), Pair::new(2, 3));
        assert!(r.checks() >= 5, "audits ran: {}", r.checks());
    }

    /// A resolver that fabricates everything, for the should_panic tests.
    struct Liar {
        stats: PruneStats,
        loose_then_tight: bool,
        calls: u32,
    }

    impl Liar {
        fn new() -> Self {
            Liar {
                stats: PruneStats::default(),
                loose_then_tight: false,
                calls: 0,
            }
        }
    }

    impl DistanceResolver for Liar {
        fn n(&self) -> usize {
            4
        }
        fn max_distance(&self) -> f64 {
            1.0
        }
        fn known(&self, _p: Pair) -> Option<f64> {
            None
        }
        fn resolve(&mut self, _p: Pair) -> f64 {
            0.123 // wrong for every pair of the line metric
        }
        fn try_less(&mut self, _x: Pair, _y: Pair) -> Option<bool> {
            Some(false) // claims d(0,1) >= d(0,3): a lie on the line metric
        }
        fn try_less_value(&mut self, _x: Pair, _v: f64) -> Option<bool> {
            None
        }
        fn try_leq_value(&mut self, _x: Pair, _v: f64) -> Option<bool> {
            None
        }
        fn try_less_sum2(&mut self, _x: (Pair, Pair), _y: (Pair, Pair)) -> Option<bool> {
            None
        }
        fn lower_bound_hint(&mut self, _x: Pair) -> f64 {
            0.0
        }
        fn bounds_hint(&mut self, _x: Pair) -> (f64, f64) {
            if self.loose_then_tight {
                // First call tight, second call looser: a monotonicity bug.
                self.calls += 1;
                if self.calls == 1 {
                    (0.3, 0.4)
                } else {
                    (0.0, 1.0)
                }
            } else {
                (0.9, 1.0) // excludes the true d(0,1) = 0.1: a sandwich bug
            }
        }
        fn preload(&mut self, _p: Pair, _d: f64) {}
        fn export_known(&self, _out: &mut Vec<(Pair, f64)>) {}
        fn prune_stats(&self) -> PruneStats {
            self.stats
        }
        fn prune_stats_mut(&mut self) -> &mut PruneStats {
            &mut self.stats
        }
    }

    fn checked_liar(liar: Liar) -> CheckedResolver<Liar, impl Fn(Pair) -> f64> {
        let metric = line_metric();
        CheckedResolver::new(liar, move |p| metric.distance(p.lo(), p.hi()))
    }

    #[test]
    #[should_panic(expected = "do not sandwich")]
    fn catches_bounds_that_exclude_the_truth() {
        let mut r = checked_liar(Liar::new());
        let _ = r.bounds_hint(Pair::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "loosened past")]
    fn catches_bounds_that_loosen() {
        let mut liar = Liar::new();
        liar.loose_then_tight = true;
        let mut r = checked_liar(liar);
        let p = Pair::new(0, 2); // true 0.35, inside both reported intervals
        let _ = r.bounds_hint(p);
        let _ = r.bounds_hint(p);
    }

    #[test]
    #[should_panic(expected = "try_less: claimed false")]
    fn catches_lying_verdicts() {
        let mut r = checked_liar(Liar::new());
        let _ = r.try_less(Pair::new(0, 1), Pair::new(0, 3));
    }

    #[test]
    #[should_panic(expected = "resolve: presented")]
    fn catches_wrong_resolved_values() {
        let mut r = checked_liar(Liar::new());
        let _ = r.resolve(Pair::new(0, 3));
    }

    #[test]
    #[should_panic(expected = "resolve_fallible: presented")]
    fn audits_the_fallible_path_too() {
        let mut r = checked_liar(Liar::new());
        let _ = r.resolve_fallible(Pair::new(0, 3));
    }
}
