//! Landmark selection and bootstrap (LAESA preprocessing, §4.2 of the paper).

use prox_core::invariant::{expect_ok, InvariantExt};
use prox_core::{Metric, ObjectId, Oracle, OracleError, Pair};

use crate::BoundScheme;

/// The product of a landmark bootstrap: `k` pivots and, for each, its full
/// row of distances to every object.
///
/// Bootstrapping costs `k·n − k·(k+1)/2` oracle calls (pivot-to-pivot
/// distances are reused between rows); the paper's tables report this as the
/// `Bootstrap` column. Any [`BoundScheme`] can absorb the resolved edges via
/// [`Bootstrap::apply_to`] — that is how "Tri Scheme with bootstrap" is
/// assembled.
#[derive(Clone, Debug)]
pub struct Bootstrap {
    n: usize,
    /// Selected pivot ids, in selection order.
    pub pivots: Vec<ObjectId>,
    /// `rows[t][x]` = exact distance from pivot `t` to object `x`.
    pub rows: Vec<Box<[f64]>>,
}

impl Bootstrap {
    /// Number of objects the bootstrap covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of pivots.
    pub fn k(&self) -> usize {
        self.pivots.len()
    }

    /// Iterates every resolved `(pair, distance)` the bootstrap produced,
    /// deduplicated (pivot-to-pivot edges appear once).
    pub fn edges(&self) -> impl Iterator<Item = (Pair, f64)> + '_ {
        self.pivots.iter().enumerate().flat_map(move |(t, &p)| {
            (0..self.n as ObjectId).filter_map(move |x| {
                if x == p {
                    return None;
                }
                // Skip pairs already emitted by an earlier pivot's row.
                if self.pivots[..t].contains(&x) {
                    return None;
                }
                Some((Pair::new(p, x), self.rows[t][x as usize]))
            })
        })
    }

    /// Records every bootstrap edge into `scheme`.
    pub fn apply_to<S: BoundScheme>(&self, scheme: &mut S) {
        for (p, d) in self.edges() {
            scheme.record(p, d);
        }
    }
}

/// Selects `k` landmarks by the classic max-min (farthest-first) rule used
/// by LAESA: the first pivot is seeded-random; each next pivot is the object
/// farthest from all pivots chosen so far. Every distance learned on the way
/// is an oracle call and is retained in the returned [`Bootstrap`].
pub fn select_maxmin_pivots<M: Metric>(oracle: &Oracle<M>, k: usize, seed: u64) -> Bootstrap {
    expect_ok(
        try_select_maxmin_pivots(oracle, k, seed),
        "select_maxmin_pivots on the infallible path",
    )
}

/// Fallible twin of [`select_maxmin_pivots`]: a fault or budget error from
/// the oracle aborts the bootstrap cleanly instead of panicking.
pub fn try_select_maxmin_pivots<M: Metric>(
    oracle: &Oracle<M>,
    k: usize,
    seed: u64,
) -> Result<Bootstrap, OracleError> {
    let n = oracle.n();
    assert!(n >= 2, "need at least two objects"); // integer, not a float decision; lint: allow(L3)
    let k = k.clamp(1, n);

    // TinyRng::new xors its seed with the splitmix increment; pre-xor it
    // back out so the draw matches the original raw-splitmix sequence and
    // published experiment numbers stay bit-stable.
    let mut rng = prox_core::TinyRng::new(seed ^ 0x5DEE_CE66_D1CE_CAFE ^ 0x9E37_79B9_7F4A_7C15);
    let first = rng.below(n) as ObjectId;

    let mut pivots: Vec<ObjectId> = Vec::with_capacity(k);
    let mut rows: Vec<Box<[f64]>> = Vec::with_capacity(k);
    // min over selected pivots of d(pivot, x)
    let mut min_dist = vec![f64::INFINITY; n];

    let mut current = first;
    for t in 0..k {
        let mut row = vec![0.0f64; n].into_boxed_slice();
        for x in 0..n as ObjectId {
            if x == current {
                continue;
            }
            // Pivot-to-pivot distances are already in earlier rows.
            if let Some(s) = pivots.iter().position(|&p| p == x) {
                row[x as usize] = rows[s][current as usize];
            } else {
                row[x as usize] = oracle.try_call(current, x)?;
            }
        }
        pivots.push(current);
        for x in 0..n {
            min_dist[x] = min_dist[x].min(row[x]);
        }
        rows.push(row);
        if t + 1 == k {
            break;
        }
        // Farthest-first: argmax of min distance to the chosen pivots.
        min_dist[current as usize] = f64::NEG_INFINITY;
        let mut best = None;
        let mut best_d = f64::NEG_INFINITY;
        for (x, &d) in min_dist.iter().enumerate() {
            // order-only selection, any tie-break exact; lint: allow(L3)
            if !pivots.contains(&(x as ObjectId)) && d > best_d {
                best_d = d;
                best = Some(x as ObjectId);
            }
        }
        current = best.expect_invariant("k <= n guarantees a next pivot");
    }

    Ok(Bootstrap { n, pivots, rows })
}

/// Alias with the paper's terminology: bootstrap a scheme with LAESA-style
/// landmarks, `k = log(n)` unless stated otherwise (§5.1.2).
pub fn laesa_bootstrap<M: Metric>(oracle: &Oracle<M>, k: usize, seed: u64) -> Bootstrap {
    select_maxmin_pivots(oracle, k, seed)
}

/// Fallible twin of [`laesa_bootstrap`].
pub fn try_laesa_bootstrap<M: Metric>(
    oracle: &Oracle<M>,
    k: usize,
    seed: u64,
) -> Result<Bootstrap, OracleError> {
    try_select_maxmin_pivots(oracle, k, seed)
}

/// The paper's default number of landmarks, `⌈log2 n⌉` (§5.1.2 and the
/// table headers use `k = log(n)`).
pub fn default_landmarks(n: usize) -> usize {
    (n.max(2) as f64).log2().ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_core::FnMetric;

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn bootstrap_call_budget() {
        let n = 50;
        let k = 6;
        let oracle = line_oracle(n);
        let b = select_maxmin_pivots(&oracle, k, 42);
        assert_eq!(b.k(), k);
        let expected = (k as u64) * (n as u64 - 1) - (k as u64 * (k as u64 - 1) / 2);
        assert_eq!(oracle.calls(), expected, "k·(n−1) − C(k,2) calls");
    }

    #[test]
    fn rows_hold_exact_distances() {
        let oracle = line_oracle(20);
        let b = select_maxmin_pivots(&oracle, 4, 7);
        for (t, &p) in b.pivots.iter().enumerate() {
            for x in 0..20u32 {
                let want = oracle.ground_truth().distance(p, x);
                assert!((b.rows[t][x as usize] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn maxmin_spreads_on_a_line() {
        // On a line, farthest-first must pick (near) the two extremes early.
        let oracle = line_oracle(101);
        let b = select_maxmin_pivots(&oracle, 3, 1);
        let mut ids = b.pivots.clone();
        ids.sort_unstable();
        // Second pivot is an extreme (0 or 100); third is the other extreme
        // or the midpoint region. At minimum the spread must cover > half.
        let spread = f64::from(ids[ids.len() - 1] - ids[0]);
        assert!(spread >= 50.0, "pivots {ids:?} too clustered");
    }

    #[test]
    fn edges_are_unique_and_complete() {
        let oracle = line_oracle(12);
        let b = select_maxmin_pivots(&oracle, 3, 9);
        let edges: Vec<(Pair, f64)> = b.edges().collect();
        let mut keys: Vec<u64> = edges.iter().map(|(p, _)| p.key()).collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "no duplicate pairs");
        // k·n − k·(k+1)/2 distinct pairs (here: 3·12 − 6 = 30).
        assert_eq!(edges.len(), 30);
    }

    #[test]
    fn apply_to_feeds_a_scheme() {
        let oracle = line_oracle(10);
        let b = select_maxmin_pivots(&oracle, 2, 3);
        let mut scheme = crate::TriScheme::new(10, 1.0);
        b.apply_to(&mut scheme);
        assert_eq!(scheme.m(), b.edges().count());
    }

    #[test]
    fn deterministic_under_seed() {
        let o1 = line_oracle(30);
        let o2 = line_oracle(30);
        let b1 = select_maxmin_pivots(&o1, 5, 99);
        let b2 = select_maxmin_pivots(&o2, 5, 99);
        assert_eq!(b1.pivots, b2.pivots);
    }

    #[test]
    fn default_landmarks_log2() {
        assert_eq!(default_landmarks(64), 6);
        assert_eq!(default_landmarks(2016), 11);
        assert_eq!(default_landmarks(2), 1);
    }
}
