//! ADM — the Approximate Distance Map baseline (Shasha & Wang, 1990).

use prox_core::Pair;

use crate::BoundScheme;

/// How far each ADM update propagates.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum AdmUpdate {
    /// Iterate the endpoint-pivot sweeps to a fixed point: bounds are the
    /// *tightest* path bounds, identical to SPLUB's (the default here).
    #[default]
    Fixpoint,
    /// The historical Shasha–Wang discipline: exactly one `O(n²)` sweep per
    /// resolved distance. Slightly looser lower bounds can survive (upper
    /// bounds stay exact — a new shortest path uses the new edge at most
    /// once). Kept for the Figure-4 baseline comparison.
    SinglePass,
}

/// Dense lower/upper bound matrices, updated on every resolution.
///
/// ADM keeps, for all `n²` pairs, the tightest lower (`lo`) and upper (`up`)
/// bounds implied by the triangle inequality over everything resolved so
/// far. Queries are `O(1)` lookups; each update propagates the new distance
/// through the matrices with pivot sweeps restricted to the freshly-resolved
/// endpoints, iterated to a fixed point — `O(n²)` per sweep, and the reason
/// the paper calls ADM impractical for repeated invocation on large inputs
/// (it also needs `Θ(n²)` memory up front).
///
/// The bounds ADM produces are the *tightest* path-derivable bounds — the
/// same values SPLUB computes lazily. The cross-scheme test-suite asserts
/// `Adm == Splub` on random instances.
///
/// ## Update rules
///
/// On `record(a, b, d)` the sweep applies, for every pair `(i, j)` and
/// pivots `k ∈ {a, b}` (Gauss–Seidel, current values on the right):
///
/// ```text
/// up(i,j) = min(up(i,j), up(i,k) + up(k,j))
/// lo(i,j) = max(lo(i,j), lo(i,k) − up(k,j), lo(j,k) − up(k,i))
/// ```
///
/// New shortest paths and new wrap bounds created by the edge `(a, b)` all
/// pass through `a` or `b`, so pivoting on the two endpoints until no entry
/// changes reaches the full closure.
pub struct Adm {
    n: usize,
    max_distance: f64,
    /// Row-major `n × n`; `up[i*n + j]`.
    up: Vec<f64>,
    lo: Vec<f64>,
    m: usize,
    /// Total pivot sweeps executed (exposed for the CPU-cost analyses).
    sweeps: u64,
    update: AdmUpdate,
}

impl Adm {
    /// An empty ADM over `n` objects with distances in `[0, max_distance]`,
    /// with fixpoint (tightest) updates.
    pub fn new(n: usize, max_distance: f64) -> Self {
        Adm::with_update(n, max_distance, AdmUpdate::Fixpoint)
    }

    /// An empty ADM with an explicit update discipline.
    pub fn with_update(n: usize, max_distance: f64, update: AdmUpdate) -> Self {
        let mut up = vec![max_distance; n * n];
        let lo = vec![0.0; n * n];
        for i in 0..n {
            up[i * n + i] = 0.0;
        }
        Adm {
            n,
            max_distance,
            up,
            lo,
            m: 0,
            sweeps: 0,
            update,
        }
    }

    #[inline]
    fn idx(&self, i: u32, j: u32) -> usize {
        i as usize * self.n + j as usize
    }

    /// Number of full-matrix pivot sweeps performed so far.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// One Gauss–Seidel sweep with pivots `a` and `b`; returns whether any
    /// entry moved by more than `eps`.
    fn sweep(&mut self, a: u32, b: u32, eps: f64) -> bool {
        let n = self.n as u32;
        let mut changed = false;
        for i in 0..n {
            for j in (i + 1)..n {
                let ij = self.idx(i, j);
                let mut up_ij = self.up[ij];
                let mut lo_ij = self.lo[ij];
                for k in [a, b] {
                    if k == i || k == j {
                        continue;
                    }
                    let ik = self.idx(i, k);
                    let kj = self.idx(k, j);
                    let cand_up = self.up[ik] + self.up[kj];
                    if cand_up < up_ij - eps {
                        up_ij = cand_up;
                        changed = true;
                    }
                    let cand_lo = (self.lo[ik] - self.up[kj]).max(self.lo[kj] - self.up[ik]);
                    if cand_lo > lo_ij + eps {
                        lo_ij = cand_lo;
                        changed = true;
                    }
                }
                if lo_ij > up_ij {
                    lo_ij = up_ij;
                }
                self.up[ij] = up_ij;
                self.lo[ij] = lo_ij;
                let ji = self.idx(j, i);
                self.up[ji] = up_ij;
                self.lo[ji] = lo_ij;
            }
        }
        self.sweeps += 1;
        changed
    }
}

impl BoundScheme for Adm {
    fn n(&self) -> usize {
        self.n
    }

    fn max_distance(&self) -> f64 {
        self.max_distance
    }

    fn known(&self, p: Pair) -> Option<f64> {
        let (a, b) = p.ends();
        let i = self.idx(a, b);
        // A pair is known exactly when its bounds have collapsed.
        (self.lo[i] == self.up[i]).then_some(self.lo[i])
    }

    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        let (a, b) = p.ends();
        let i = self.idx(a, b);
        (self.lo[i], self.up[i])
    }

    fn record(&mut self, p: Pair, d: f64) {
        let (a, b) = p.ends();
        let ij = self.idx(a, b);
        let ji = self.idx(b, a);
        if self.lo[ij] == self.up[ij] {
            // Already collapsed. An *inferred* collapse can sit an ulp away
            // from the oracle's exact value; overwrite with the oracle's
            // truth rather than discarding it, but don't recount the edge.
            if self.lo[ij] == d {
                return;
            }
            self.up[ij] = d;
            self.lo[ij] = d;
            self.up[ji] = d;
            self.lo[ji] = d;
            while self.sweep(a, b, 1e-15) {}
            return;
        }
        self.up[ij] = d;
        self.lo[ij] = d;
        self.up[ji] = d;
        self.lo[ji] = d;
        self.m += 1;
        match self.update {
            // Propagate to a fixed point. Convergence is fast (new
            // information flows through the two endpoints), typically 1–2
            // sweeps.
            AdmUpdate::Fixpoint => while self.sweep(a, b, 1e-15) {},
            AdmUpdate::SinglePass => {
                self.sweep(a, b, 1e-15);
            }
        }
    }

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> &'static str {
        "ADM"
    }

    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        for p in Pair::all(self.n) {
            let i = self.idx(p.lo(), p.hi());
            if self.lo[i] == self.up[i] {
                f(p, self.lo[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn single_triangle_bounds() {
        let mut s = Adm::new(7, 1.0);
        s.record(p(1, 3), 0.8);
        s.record(p(3, 4), 0.1);
        let (lb, ub) = s.bounds(p(1, 4));
        assert!((lb - 0.7).abs() < 1e-12, "lb {lb}");
        assert!((ub - 0.9).abs() < 1e-12, "ub {ub}");
    }

    #[test]
    fn chain_ub_propagates() {
        let mut s = Adm::new(4, 1.0);
        s.record(p(0, 1), 0.2);
        s.record(p(1, 2), 0.2);
        s.record(p(2, 3), 0.2);
        let (_, ub) = s.bounds(p(0, 3));
        assert!((ub - 0.6).abs() < 1e-12, "ub {ub}");
    }

    #[test]
    fn wrap_lb_propagates() {
        // Same fixture as Splub::wrap_lower_bound_through_path.
        let mut s = Adm::new(4, 1.0);
        s.record(p(0, 2), 0.1);
        s.record(p(2, 3), 0.9);
        s.record(p(1, 3), 0.1);
        let (lb, _) = s.bounds(p(0, 1));
        assert!((lb - 0.7).abs() < 1e-12, "lb {lb}");
    }

    #[test]
    fn known_collapses_and_counts() {
        let mut s = Adm::new(3, 1.0);
        assert_eq!(s.known(p(0, 1)), None);
        s.record(p(0, 1), 0.5);
        assert_eq!(s.known(p(0, 1)), Some(0.5));
        assert_eq!(s.bounds(p(0, 1)), (0.5, 0.5));
        assert_eq!(s.m(), 1);
        s.record(p(0, 1), 0.5); // idempotent
        assert_eq!(s.m(), 1);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let edges = [
            (p(0, 2), 0.1),
            (p(2, 3), 0.9),
            (p(1, 3), 0.1),
            (p(0, 4), 0.35),
            (p(4, 1), 0.3),
        ];
        let mut fwd = Adm::new(5, 1.0);
        for &(e, w) in &edges {
            fwd.record(e, w);
        }
        let mut rev = Adm::new(5, 1.0);
        for &(e, w) in edges.iter().rev() {
            rev.record(e, w);
        }
        for q in Pair::all(5) {
            let (l1, u1) = fwd.bounds(q);
            let (l2, u2) = rev.bounds(q);
            assert!((l1 - l2).abs() < 1e-12, "{q:?}: lo {l1} vs {l2}");
            assert!((u1 - u2).abs() < 1e-12, "{q:?}: up {u1} vs {u2}");
        }
    }
}
