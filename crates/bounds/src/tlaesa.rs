//! TLAESA as a pair-bound scheme (baseline; Micó, Oncina, Carrasco 1996).

use std::collections::BTreeMap;

use prox_core::invariant::{expect_ok, InvariantExt};
use prox_core::{Metric, ObjectId, Oracle, OracleError, Pair};

use crate::laesa::pivot_list_bounds;
use crate::{try_select_maxmin_pivots, BoundScheme};

/// Landmark rows **plus** a recursively-built pivot tree.
///
/// TLAESA augments LAESA's base prototypes with a search tree: starting from
/// a root representative, each node is split around two representatives (the
/// node's own plus the member farthest from it) and members are assigned to
/// the nearer one. Every distance evaluated during construction is a real
/// oracle call — the paper notes that "the construction of [the tree] incurs
/// additional distance computations" (§5.4.1) — and all of them are retained
/// as per-object pivot lists.
///
/// Adapted to the pair-bounds interface: for a pair `(a, b)`, any pivot
/// whose distance to *both* endpoints is known contributes
/// `|d(p,a) − d(p,b)|` / `d(p,a) + d(p,b)`. The usable pivots are the base
/// prototypes (known to everyone) plus the tree representatives shared by
/// the two objects' root-to-leaf paths. This gives TLAESA slightly tighter
/// bounds than LAESA at a higher bootstrap cost — matching the ordering the
/// paper observes (LAESA ≤ TLAESA ≤ Tri in calls saved).
///
/// Like LAESA, the scheme is *static*: `record` only memoizes.
#[derive(Clone, Debug)]
pub struct Tlaesa {
    n: usize,
    max_distance: f64,
    /// Per-object sorted `(pivot_object, distance)` lists: base prototypes
    /// plus every tree representative the object was compared against.
    lists: Vec<Vec<(ObjectId, f64)>>,
    resolved: BTreeMap<u64, f64>,
    construction_calls: u64,
}

impl Tlaesa {
    /// Builds the scheme: `k` max-min base prototypes plus the pivot tree.
    /// All oracle calls made here are counted on `oracle` (the scheme's
    /// bootstrap cost); [`Tlaesa::construction_calls`] reports the total.
    pub fn build<M: Metric>(oracle: &Oracle<M>, k: usize, leaf_size: usize, seed: u64) -> Self {
        expect_ok(
            Self::try_build(oracle, k, leaf_size, seed),
            "Tlaesa::build on the infallible path",
        )
    }

    /// Fallible twin of [`Tlaesa::build`]: a fault or budget error from the
    /// oracle aborts construction cleanly instead of panicking.
    pub fn try_build<M: Metric>(
        oracle: &Oracle<M>,
        k: usize,
        leaf_size: usize,
        seed: u64,
    ) -> Result<Self, OracleError> {
        let n = oracle.n();
        let start_calls = oracle.calls();
        let bootstrap = try_select_maxmin_pivots(oracle, k, seed)?;

        fn note(
            resolved: &mut BTreeMap<u64, f64>,
            lists: &mut [Vec<(ObjectId, f64)>],
            a: ObjectId,
            b: ObjectId,
            d: f64,
        ) {
            resolved.insert(Pair::new(a, b).key(), d);
            for (x, p) in [(b, a), (a, b)] {
                let list = &mut lists[x as usize];
                if let Err(i) = list.binary_search_by_key(&p, |&(id, _)| id) {
                    list.insert(i, (p, d));
                }
            }
        }

        let mut lists: Vec<Vec<(ObjectId, f64)>> = vec![Vec::new(); n];
        let mut resolved: BTreeMap<u64, f64> = BTreeMap::new();
        for (t, &pv) in bootstrap.pivots.iter().enumerate() {
            for x in 0..n as ObjectId {
                if x != pv {
                    note(
                        &mut resolved,
                        &mut lists,
                        pv,
                        x,
                        bootstrap.rows[t][x as usize],
                    );
                }
            }
        }

        // Pivot tree. Root representative: the first base prototype, whose
        // distances to everything are already known (no extra calls at the
        // root level).
        let root_rep = bootstrap.pivots[0];
        let members: Vec<ObjectId> = (0..n as ObjectId).filter(|&x| x != root_rep).collect();
        let root_dists: Vec<f64> = members
            .iter()
            .map(|&x| bootstrap.rows[0][x as usize])
            .collect();
        let leaf_size = leaf_size.max(2);

        // Iterative DFS over (representative, members, dist-to-rep) frames.
        let mut stack = vec![(root_rep, members, root_dists)];
        while let Some((rep, members, dists)) = stack.pop() {
            // integer, not a float decision; lint: allow(L3)
            if members.len() <= leaf_size {
                continue;
            }
            // Second representative: farthest member from `rep`.
            let far_idx = dists
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect_invariant("non-empty node");
            let rep2 = members[far_idx];
            // Distances from rep2 to every member (oracle calls unless the
            // pair is already known from the prototype rows or an ancestor).
            let mut left: (Vec<ObjectId>, Vec<f64>) = (Vec::new(), Vec::new());
            let mut right: (Vec<ObjectId>, Vec<f64>) = (Vec::new(), Vec::new());
            for (i, &x) in members.iter().enumerate() {
                if x == rep2 {
                    continue;
                }
                let pair = Pair::new(rep2, x);
                let d2 = match resolved.get(&pair.key()) {
                    Some(&d) => d,
                    None => {
                        let d = oracle.try_call_pair(pair)?;
                        note(&mut resolved, &mut lists, rep2, x, d);
                        d
                    }
                };
                // any partition is a valid tree; lint: allow(L3)
                if dists[i] <= d2 {
                    left.0.push(x);
                    left.1.push(dists[i]);
                } else {
                    right.0.push(x);
                    right.1.push(d2);
                }
            }
            // Degenerate split (all members on one side) would recurse
            // forever; stop splitting that branch instead.
            if !left.0.is_empty() && !right.0.is_empty() {
                stack.push((rep, left.0, left.1));
                stack.push((rep2, right.0, right.1));
            }
        }

        Ok(Tlaesa {
            n,
            max_distance: oracle.max_distance(),
            lists,
            resolved,
            construction_calls: oracle.calls() - start_calls,
        })
    }

    /// Oracle calls spent building prototypes + tree (the bootstrap cost).
    pub fn construction_calls(&self) -> u64 {
        self.construction_calls
    }

    /// Every exact distance the scheme holds (prototype rows, tree
    /// construction, and later recordings). Lets experiments hand the same
    /// knowledge to other schemes for fair bound comparisons.
    pub fn resolved_edges(&self) -> impl Iterator<Item = (Pair, f64)> + '_ {
        self.resolved
            .iter()
            .map(|(&key, &d)| (Pair::from_key(key), d))
    }

    /// Average per-object pivot-list length (diagnostics).
    pub fn mean_list_len(&self) -> f64 {
        let total: usize = self.lists.iter().map(Vec::len).sum();
        total as f64 / self.n as f64
    }
}

impl BoundScheme for Tlaesa {
    fn n(&self) -> usize {
        self.n
    }

    fn max_distance(&self) -> f64 {
        self.max_distance
    }

    fn known(&self, p: Pair) -> Option<f64> {
        self.resolved.get(&p.key()).copied()
    }

    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        if let Some(d) = self.known(p) {
            return (d, d);
        }
        pivot_list_bounds(
            &self.lists[p.lo() as usize],
            &self.lists[p.hi() as usize],
            self.max_distance,
        )
    }

    fn record(&mut self, p: Pair, d: f64) {
        self.resolved.insert(p.key(), d);
    }

    fn m(&self) -> usize {
        self.resolved.len()
    }

    fn name(&self) -> &'static str {
        "TLAESA"
    }

    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        for (p, d) in self.resolved_edges() {
            f(p, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select_maxmin_pivots;
    use prox_core::FnMetric;

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn construction_counts_calls() {
        let oracle = line_oracle(60);
        let t = Tlaesa::build(&oracle, 4, 8, 5);
        assert_eq!(t.construction_calls(), oracle.calls());
        // Tree construction must cost more than bare LAESA landmarks.
        let oracle2 = line_oracle(60);
        select_maxmin_pivots(&oracle2, 4, 5);
        assert!(
            oracle.calls() > oracle2.calls(),
            "TLAESA ({}) should out-spend LAESA ({}) at bootstrap",
            oracle.calls(),
            oracle2.calls()
        );
    }

    #[test]
    fn bounds_sound_on_line() {
        let oracle = line_oracle(50);
        let mut t = Tlaesa::build(&oracle, 3, 4, 2);
        for p in Pair::all(50) {
            let (lb, ub) = t.bounds(p);
            let d = oracle.ground_truth().distance(p.lo(), p.hi());
            assert!(lb <= d + 1e-12, "{p:?}: lb {lb} > {d}");
            assert!(ub >= d - 1e-12, "{p:?}: ub {ub} < {d}");
        }
    }

    #[test]
    fn tighter_or_equal_to_laesa_same_prototypes() {
        let oracle = line_oracle(80);
        let mut tl = Tlaesa::build(&oracle, 4, 8, 77);
        let oracle2 = line_oracle(80);
        let b = select_maxmin_pivots(&oracle2, 4, 77);
        let mut la = crate::Laesa::new(1.0, &b);
        for p in Pair::all(80).step_by(7) {
            let (tlb, tub) = tl.bounds(p);
            let (llb, lub) = la.bounds(p);
            assert!(tlb >= llb - 1e-12, "{p:?}: TLAESA lb {tlb} < LAESA {llb}");
            assert!(tub <= lub + 1e-12, "{p:?}: TLAESA ub {tub} > LAESA {lub}");
        }
    }

    #[test]
    fn record_memoizes() {
        let oracle = line_oracle(20);
        let mut t = Tlaesa::build(&oracle, 2, 4, 1);
        let q = Pair::new(7, 9);
        t.record(q, 0.123);
        assert_eq!(t.bounds(q), (0.123, 0.123));
        assert_eq!(t.known(q), Some(0.123));
    }

    #[test]
    fn lists_are_sorted() {
        let oracle = line_oracle(40);
        let t = Tlaesa::build(&oracle, 3, 4, 8);
        for list in &t.lists {
            let ids: Vec<ObjectId> = list.iter().map(|&(id, _)| id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(ids, sorted);
        }
    }
}
