//! Distance-bound schemes and the pruning resolver framework.
//!
//! This crate implements the paper's graph-theoretic machinery (§3–§4):
//! given the *partial graph* of already-resolved distances, derive lower and
//! upper bounds on unknown distances from the triangle inequality, and use
//! those bounds to decide distance comparisons **without calling the
//! oracle**.
//!
//! ## Schemes
//!
//! | Scheme | Bounds | Query | Update | Paper |
//! |---|---|---|---|---|
//! | [`TriScheme`] | triangles only (paths of length 2) | `O(deg a + deg b)` | `O(deg)` | §4.2, Algorithm 2 |
//! | [`Splub`] | **tightest** (all paths) | `O(m + n log n)` | `O(1)` | §4.1, Algorithm 1 |
//! | [`Adm`] | tightest (bound matrices) | `O(1)` | `O(n²)` per resolve | baseline [Shasha–Wang 1990] |
//! | [`Laesa`] | landmark rows, static | `O(k)` | `O(1)` (cache only) | baseline [Micó–Oncina–Vidal 1994] |
//! | [`Tlaesa`] | landmark rows + pivot tree | `O(k + depth)` | `O(1)` (cache only) | baseline [Micó–Oncina–Carrasco 1996] |
//! | [`NoScheme`] | none (`[0, d_max]`) | `O(1)` | `O(1)` | the "Without Plug" column |
//!
//! All schemes absorb every resolved distance through
//! [`BoundScheme::record`] and serve exact values for known pairs, so a
//! resolver never pays for the same pair twice.
//!
//! ## The resolver
//!
//! [`BoundResolver`] wires a scheme to an [`prox_core::Oracle`] and exposes
//! the [`DistanceResolver`] interface the proximity algorithms in
//! `prox-algos` are written against: *re-authored IF statements*. Instead of
//!
//! ```text
//! if dist(a, b) >= dist(c, d) { ... }
//! ```
//!
//! an algorithm asks [`DistanceResolver::try_less`] first, and only falls
//! back to resolution when the bounds are inconclusive — precisely the
//! re-authoring the paper prescribes (§3).

pub mod adm;
pub mod audit;
pub mod bootstrap;
pub mod cascade;
#[cfg(feature = "paranoid")]
pub mod checked;
pub mod composite;
pub mod laesa;
pub mod resolver;
pub mod scheme;
pub mod splub;
pub mod tlaesa;
pub mod tri;
#[cfg(feature = "ablation")]
pub mod tri_btree;

pub use adm::{Adm, AdmUpdate};
pub use audit::{AuditPolicy, CorruptionStats, VOTE_CAP};
pub use bootstrap::{
    laesa_bootstrap, select_maxmin_pivots, try_laesa_bootstrap, try_select_maxmin_pivots, Bootstrap,
};
pub use cascade::{CascadeResolver, WeakStats};
#[cfg(feature = "paranoid")]
pub use checked::CheckedResolver;
pub use composite::Composite;
pub use laesa::Laesa;
pub use resolver::{BoundResolver, DistanceResolver, VanillaResolver, DECISION_EPS};
pub use scheme::{BoundScheme, CascadeTier, GoalBounds, NoScheme};
pub use splub::Splub;
pub use tlaesa::Tlaesa;
pub use tri::TriScheme;
#[cfg(feature = "ablation")]
pub use tri_btree::TriBTreeScheme;
