//! The resolver framework: re-authored IF statements (§3 of the paper).

use std::collections::BTreeMap;
use std::rc::Rc;

use prox_core::invariant;
use prox_core::invariant::{expect_ok, expect_some};
use prox_core::{
    Degradation, Metric, Oracle, OracleError, Pair, PruneStats, QueryGoal, SpecBounds,
};
use prox_obs::{
    quantize_width, CorruptionAction, Metrics, ProbeKind, ProbeVerdict, ProvenanceLedger,
    TraceEvent, TraceSink,
};

use crate::audit::{AuditPolicy, AuditState, CorruptionStats, VOTE_CAP};
use crate::cascade::WeakStats;
use crate::scheme::{CascadeTier, GoalBounds};
use crate::{BoundScheme, NoScheme};

/// Rounding margin applied to every bound-based decision.
///
/// Derived bounds are floating-point sums/differences of metric values, and
/// float metrics themselves can violate the triangle inequality in the last
/// ulp (e.g. a Euclidean distance vs. the rounded sum along a collinear
/// triple). Deciding a comparison only when the bounds clear this margin
/// keeps plugged runs byte-identical to vanilla runs even under such
/// ulp-level noise; near-ties simply fall through and are compared exactly.
/// Distances are normalized to `[0, 1]`, so an absolute margin suffices.
pub const DECISION_EPS: f64 = 1e-12;

/// Guard band for cascade-tier (goal-aware) decisions — see DESIGN.md §13.
///
/// The cascade's cheap tiers estimate bounds from *split* float sums
/// (`dℓ[a] + dℓ[b]`, `df(u) + db(u)`) that can round a few ulps past the
/// exact tier's left-folded path sums. A cascade tier may therefore claim a
/// comparison against `v` decided only when its estimate clears `v` by this
/// margin: since `CASCADE_EPS` minus the worst-case rounding slack still
/// exceeds [`DECISION_EPS`], a cascade-decisive verdict is always the
/// verdict the exact sandwich would give (for both `<` and `≤` probes).
/// Near-threshold queries fall through to the exact tier, so the margin
/// costs tightness, never correctness.
pub const CASCADE_EPS: f64 = 1e-9;

/// What a proximity algorithm is written against.
///
/// The paper's recipe for adapting an existing algorithm is mechanical:
/// every `if dist(a,b) < dist(c,d)` becomes a [`DistanceResolver::less`]
/// call, every `if dist(a,b) < threshold` becomes
/// [`DistanceResolver::distance_if_less`], and every plain distance fetch
/// becomes [`DistanceResolver::resolve`]. The resolver first tries to decide
/// the comparison from bounds (`try_*`), and only falls back to oracle
/// resolution when the bounds are inconclusive. Because the fallback always
/// yields exact distances, **the plugged algorithm's output is identical to
/// the vanilla algorithm's** — only the number of oracle calls changes.
pub trait DistanceResolver {
    /// Number of objects.
    fn n(&self) -> usize;

    /// The a-priori distance cap.
    fn max_distance(&self) -> f64;

    /// Exact distance if already known (never calls the oracle).
    #[must_use]
    fn known(&self, p: Pair) -> Option<f64>;

    /// Exact distance, calling the oracle if necessary.
    fn resolve(&mut self, p: Pair) -> f64;

    /// Fallible twin of [`DistanceResolver::resolve`], for fault-aware
    /// callers: resolution failures (`prox_core::OracleError`) surface as
    /// values instead of panics, and a failed attempt records *nothing* —
    /// the resolver's knowledge and stats advance only on success.
    ///
    /// The default forwards to `resolve`, which is correct for resolvers
    /// that never touch a fallible oracle (test doubles, speculative
    /// probes); oracle-backed resolvers override it.
    fn resolve_fallible(&mut self, p: Pair) -> Result<f64, OracleError> {
        Ok(self.resolve(p))
    }

    /// Tries to decide `dist(x) < dist(y)` without the oracle.
    #[must_use = "a discarded verdict wastes the bound derivation"]
    fn try_less(&mut self, x: Pair, y: Pair) -> Option<bool>;

    /// Tries to decide `dist(x) < v` without the oracle.
    #[must_use = "a discarded verdict wastes the bound derivation"]
    fn try_less_value(&mut self, x: Pair, v: f64) -> Option<bool>;

    /// Tries to decide `dist(x) <= v` without the oracle (`Some(false)` only
    /// when the lower bound strictly exceeds `v`). Algorithms that must
    /// inspect *ties* exactly — e.g. kNN breaking equal distances by id —
    /// use this instead of [`DistanceResolver::try_less_value`].
    #[must_use = "a discarded verdict wastes the bound derivation"]
    fn try_leq_value(&mut self, x: Pair, v: f64) -> Option<bool>;

    /// Tries to decide the **aggregate** comparison
    /// `dist(x.0) + dist(x.1) < dist(y.0) + dist(y.1)` without the oracle.
    ///
    /// This is the 2-opt / edge-exchange IF statement (`d(a,b) + d(c,d)` vs
    /// `d(a,c) + d(b,d)`). Bound resolvers decide it by interval sums; the
    /// DFT resolver runs a joint feasibility test, which is strictly
    /// stronger on sums (the terms are coupled through shared triangles).
    #[must_use = "a discarded verdict wastes the bound derivation"]
    fn try_less_sum2(&mut self, x: (Pair, Pair), y: (Pair, Pair)) -> Option<bool>;

    /// Tries to decide `Σ dist(t) < v` over an arbitrary list of terms
    /// without the oracle — the N-ary generalization of
    /// [`DistanceResolver::try_less_sum2`], consumed by sum-aggregate
    /// algorithms (average-linkage cluster distances, facility-location
    /// objectives).
    ///
    /// The default sums per-term interval bounds, with the usual rounding
    /// margin scaled by the term count. The DFT resolver overrides it with
    /// a joint feasibility test over the whole triangle polytope, which is
    /// strictly stronger: with `d(a,c) = 0.9` known, the unknowns `d(a,b)`
    /// and `d(b,c)` each lie in `[0, 1]` — interval arithmetic bounds the
    /// sum by `0` while the LP certifies `Σ ≥ 0.9`.
    #[must_use = "a discarded verdict wastes the bound derivation"]
    fn try_sum_less_value(&mut self, terms: &[Pair], v: f64) -> Option<bool> {
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for &t in terms {
            let (l, u) = self.bounds_hint(t);
            lo += l;
            hi += u;
        }
        let margin = DECISION_EPS * terms.len().max(1) as f64;
        if hi < v - margin {
            Some(true)
        } else if lo >= v + margin {
            Some(false)
        } else {
            None
        }
    }

    /// Current lower bound for `x` (`0` when the resolver has no scheme).
    /// Used by algorithms that *order* candidates by optimistic distance
    /// (lazy Kruskal, kNN sweeps); correctness never depends on tightness.
    fn lower_bound_hint(&mut self, x: Pair) -> f64;

    /// Current `(lower, upper)` bounds for `x` — `(d, d)` when known,
    /// `(0, max_distance)` when the resolver derives nothing. Algorithms
    /// that maintain *interval* state over aggregates (complete-linkage's
    /// cluster distances) consume both ends; correctness never depends on
    /// tightness, only on soundness.
    fn bounds_hint(&mut self, x: Pair) -> (f64, f64);

    /// Injects externally-known distances (a persisted cache from an
    /// earlier run — see `prox_core::persist`) without touching the oracle.
    fn preload(&mut self, p: Pair, d: f64);

    /// Installs a value adopted from a weak-replica quorum (see
    /// `crate::cascade`). Semantically a resolution — the caller observed
    /// the value through the resolver, so `resolved` is billed — but
    /// provenance-aware resolvers attribute it to the `weak_quorum` ledger
    /// row instead of `strong_call`. The default keeps the historical
    /// accounting for resolvers with no ledger.
    fn preload_weak(&mut self, p: Pair, d: f64) {
        self.preload(p, d);
        self.prune_stats_mut().resolved += 1;
    }

    /// Provenance ledger: how every resolution this resolver served was
    /// sourced (strong call, weak quorum, memo, checkpoint preload,
    /// bound-decisive tier). The default — an empty ledger — is correct
    /// for resolvers that do not track provenance; ledger-aware callers
    /// treat it as "no claim", not "zero resolutions".
    fn provenance(&self) -> ProvenanceLedger {
        ProvenanceLedger::default()
    }

    /// Appends every pair whose exact distance this resolver can certify —
    /// the payload to persist for the next run.
    fn export_known(&self, out: &mut Vec<(Pair, f64)>);

    /// Corruption-audit counters. Non-zero only for resolvers that carry
    /// the untrusted-oracle audit layer (see `crate::audit`); the default
    /// — all zero — is correct for resolvers that trust their oracle.
    fn corruption_stats(&self) -> CorruptionStats {
        CorruptionStats::default()
    }

    /// Weak-tier counters. Non-zero only for resolvers that carry the
    /// weak/strong cascade layer (see `crate::cascade`); the default —
    /// all zero — is correct for resolvers with no weak tier.
    fn weak_stats(&self) -> WeakStats {
        WeakStats::default()
    }

    /// Degradation report: `Some` once a cascade resolver has lost its
    /// strong tier and switched to weak+bounds-only service (see
    /// `crate::cascade`). `None` — the default — means fully healthy:
    /// every resolution served was certified.
    fn degradation(&self) -> Option<Degradation> {
        None
    }

    /// Pruning counters.
    fn prune_stats(&self) -> PruneStats;

    /// Mutable access to the counters (used by the provided methods).
    fn prune_stats_mut(&mut self) -> &mut PruneStats;

    /// Monotone generation counter of the resolver's bound state (`0` when
    /// the resolver does not track one). Used by the speculate/commit
    /// protocol to gate reuse of speculative results.
    fn generation(&self) -> u64 {
        0
    }

    /// Upper bound on the last generation at which bound-derived answers
    /// for `x` may have changed. The default, `u64::MAX` ("always stale"),
    /// is the safe answer for resolvers that cannot track freshness: no
    /// speculative value is ever treated as current.
    fn pair_stamp(&self, x: Pair) -> u64 {
        let _ = x;
        u64::MAX
    }

    /// A read-only, thread-shareable snapshot of the resolver's bound
    /// state for speculative parallel evaluation. `None` (the default)
    /// keeps every consumer on the sequential path.
    ///
    /// Implementors must guarantee that their `try_*` verdicts are the
    /// pure decision functions of `bounds`/`known` used by
    /// [`BoundResolver`] — the committer's speculative replay reproduces
    /// exactly those decisions (same [`DECISION_EPS`] margins, same known
    /// fast paths).
    fn spec(&self) -> Option<&dyn SpecBounds> {
        None
    }

    /// The trace sink this resolver emits [`TraceEvent::BoundProbe`]
    /// events into, if any. Wrapper resolvers forward to the inner
    /// resolver so speculation helpers can discover the sink through any
    /// layering; `None` (the default) means untraced.
    fn trace_sink(&self) -> Option<Rc<dyn TraceSink>> {
        None
    }

    /// The metrics registry this resolver observes into, if any.
    fn obs_metrics(&self) -> Option<Rc<Metrics>> {
        None
    }

    /// Decides `dist(x) < dist(y)`, resolving both distances only when the
    /// bounds are inconclusive. This is the re-authored
    /// `if dist(o_i,o_j) ≥ dist(o_k,o_l)` statement from §3.
    fn less(&mut self, x: Pair, y: Pair) -> bool {
        match self.try_less(x, y) {
            Some(b) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                b
            }
            None => {
                self.prune_stats_mut().fell_through += 1;
                self.resolve(x) < self.resolve(y)
            }
        }
    }

    /// Returns `Some(dist(x))` iff `dist(x) < v`, resolving only when the
    /// bounds cannot rule the candidate out. This is the dominant idiom in
    /// Prim / PAM / kNN: "is this candidate closer than my current best —
    /// and if so, how close exactly?"
    fn distance_if_less(&mut self, x: Pair, v: f64) -> Option<f64> {
        match self.try_less_value(x, v) {
            Some(false) => {
                // Bounds proved dist(x) >= v: candidate discarded for free.
                self.prune_stats_mut().decided_by_bounds += 1;
                None
            }
            Some(true) => {
                // The comparison is decided but the caller needs the value.
                self.prune_stats_mut().decided_by_bounds += 1;
                Some(self.resolve(x))
            }
            None => {
                self.prune_stats_mut().fell_through += 1;
                let d = self.resolve(x);
                (d < v).then_some(d)
            }
        }
    }

    /// Decides the 2-opt aggregate comparison, resolving all four distances
    /// when the try is inconclusive.
    fn less_sum2(&mut self, x: (Pair, Pair), y: (Pair, Pair)) -> bool {
        match self.try_less_sum2(x, y) {
            Some(b) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                b
            }
            None => {
                self.prune_stats_mut().fell_through += 1;
                self.resolve(x.0) + self.resolve(x.1) < self.resolve(y.0) + self.resolve(y.1)
            }
        }
    }

    /// Returns `Some(dist(x))` iff `dist(x) <= v` — the tie-inclusive
    /// sibling of [`DistanceResolver::distance_if_less`].
    fn distance_if_leq(&mut self, x: Pair, v: f64) -> Option<f64> {
        match self.try_leq_value(x, v) {
            Some(false) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                None
            }
            Some(true) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                Some(self.resolve(x))
            }
            None => {
                self.prune_stats_mut().fell_through += 1;
                let d = self.resolve(x);
                (d <= v).then_some(d)
            }
        }
    }

    // ----- Fallible combinators ------------------------------------------
    //
    // Fault-aware twins of the re-authored IF statements above. Each one
    // performs *exactly* the same bound probes and stats accounting as its
    // infallible sibling — a run that never faults takes identical
    // decisions with identical `PruneStats` — and propagates the first
    // oracle failure instead of panicking.

    /// Fallible [`DistanceResolver::less`].
    fn less_fallible(&mut self, x: Pair, y: Pair) -> Result<bool, OracleError> {
        match self.try_less(x, y) {
            Some(b) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                Ok(b)
            }
            None => {
                self.prune_stats_mut().fell_through += 1;
                Ok(self.resolve_fallible(x)? < self.resolve_fallible(y)?)
            }
        }
    }

    /// Fallible [`DistanceResolver::distance_if_less`].
    fn distance_if_less_fallible(&mut self, x: Pair, v: f64) -> Result<Option<f64>, OracleError> {
        match self.try_less_value(x, v) {
            Some(false) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                Ok(None)
            }
            Some(true) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                Ok(Some(self.resolve_fallible(x)?))
            }
            None => {
                self.prune_stats_mut().fell_through += 1;
                let d = self.resolve_fallible(x)?;
                Ok((d < v).then_some(d))
            }
        }
    }

    /// Fallible [`DistanceResolver::less_sum2`].
    fn less_sum2_fallible(
        &mut self,
        x: (Pair, Pair),
        y: (Pair, Pair),
    ) -> Result<bool, OracleError> {
        match self.try_less_sum2(x, y) {
            Some(b) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                Ok(b)
            }
            None => {
                self.prune_stats_mut().fell_through += 1;
                let lhs = self.resolve_fallible(x.0)? + self.resolve_fallible(x.1)?;
                let rhs = self.resolve_fallible(y.0)? + self.resolve_fallible(y.1)?;
                Ok(lhs < rhs)
            }
        }
    }

    /// Fallible [`DistanceResolver::distance_if_leq`].
    fn distance_if_leq_fallible(&mut self, x: Pair, v: f64) -> Result<Option<f64>, OracleError> {
        match self.try_leq_value(x, v) {
            Some(false) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                Ok(None)
            }
            Some(true) => {
                self.prune_stats_mut().decided_by_bounds += 1;
                Ok(Some(self.resolve_fallible(x)?))
            }
            None => {
                self.prune_stats_mut().fell_through += 1;
                let d = self.resolve_fallible(x)?;
                Ok((d <= v).then_some(d))
            }
        }
    }
}

/// A [`BoundScheme`] wired to an [`Oracle`].
pub struct BoundResolver<'o, M: Metric, S: BoundScheme> {
    oracle: &'o Oracle<M>,
    scheme: S,
    stats: PruneStats,
    /// Generation-stamped `(lb, ub, generation)` memo per pair, used when
    /// the scheme opts in via [`BoundScheme::bounds_cacheable`]. A hit is
    /// served only while `scheme.pair_stamp(p) <= generation`, i.e. while
    /// the cached value is bitwise what the scheme would recompute —
    /// repeated SPLUB probes of one pair then cost a hash lookup instead
    /// of two Dijkstras. Hits and misses are deliberately *not* counted in
    /// [`PruneStats`]: the cache must not change any observable accounting.
    bcache: BTreeMap<u64, (f64, f64, u64)>,
    cache_on: bool,
    /// Observation handles, cloned from the oracle once at construction
    /// ("checked once per resolver construction"): the disabled hot path
    /// tests a pre-resolved `Option` discriminant and nothing else.
    trace: Option<Rc<dyn TraceSink>>,
    metrics: Option<Rc<Metrics>>,
    /// Untrusted-oracle defence (`None` = the oracle is trusted and every
    /// fresh value is accepted as-is). See `crate::audit`.
    audit: Option<AuditState>,
    /// Resolutions installed via [`DistanceResolver::preload_weak`]:
    /// billed in `stats.resolved` but attributed to the `weak_quorum`
    /// provenance row, never `strong_call`.
    weak_preloads: u64,
    /// Goal-aware cascade decisions by tier, for provenance attribution.
    /// Every other bound decision lands in the `direct` tier by
    /// subtraction (`decided_by_bounds − Σ tiers`).
    dec_ado: u64,
    dec_bidi: u64,
    dec_full: u64,
}

impl<'o, M: Metric, S: BoundScheme> BoundResolver<'o, M, S> {
    /// Wires `scheme` to `oracle`. The scheme may already hold knowledge
    /// (e.g. LAESA rows or a Tri Scheme pre-loaded by a bootstrap).
    pub fn new(oracle: &'o Oracle<M>, scheme: S) -> Self {
        assert_eq!(
            oracle.n(),
            scheme.n(),
            "oracle and scheme must cover the same objects"
        );
        let cache_on = scheme.bounds_cacheable();
        BoundResolver {
            trace: oracle.trace(),
            metrics: oracle.metrics(),
            oracle,
            scheme,
            stats: PruneStats::default(),
            bcache: BTreeMap::new(),
            cache_on,
            audit: None,
            weak_preloads: 0,
            dec_ado: 0,
            dec_bidi: 0,
            dec_full: 0,
        }
    }

    /// Enables the untrusted-oracle audit layer: sandwich-checking every
    /// accepted value (and, with `policy.vote_k >= 2`, vote-confirming
    /// every fresh resolution). See `crate::audit` for the trust model.
    pub fn with_audit(mut self, policy: AuditPolicy) -> Self {
        self.audit = Some(AuditState::new(policy));
        self
    }

    fn audit_mut(&mut self) -> &mut AuditState {
        expect_some(self.audit.as_mut(), "audited path without audit state")
    }

    /// Emits one [`TraceEvent::Corruption`]. For vote losers `lb == ub ==`
    /// the winning value; for sandwich violations they are the violated
    /// certified interval.
    #[cold]
    fn note_corruption(&self, p: Pair, action: CorruptionAction, value: f64, lb: f64, ub: f64) {
        if let Some(t) = &self.trace {
            t.emit(TraceEvent::Corruption {
                lo: p.lo(),
                hi: p.hi(),
                action,
                value,
                lb,
                ub,
            });
        }
    }

    /// First-to-`k` bit-exact vote over fresh replicas of `p`. The agreed
    /// value is returned; every disagreeing replica is counted and traced
    /// as a detection (the deterministic corruption schedule changes the
    /// bits whenever it fires, so a corrupted replica cannot reach quorum
    /// against clean ones). The per-pair quarantine cursor advances past
    /// all queried replicas, and calls beyond the first accumulate into
    /// `CorruptionStats::requeries`.
    fn voted_value(&mut self, p: Pair, k: u32) -> Result<f64, OracleError> {
        let start = self.audit_mut().cursor(p);
        let mut tallies: Vec<(u64, u32)> = Vec::new();
        let mut queried: Vec<f64> = Vec::new();
        let mut r = start;
        let winner = loop {
            invariant!(
                r - start < VOTE_CAP,
                "no {k} replicas of pair ({}, {}) agree within {VOTE_CAP} queries; \
                 the oracle is unusable",
                p.lo(),
                p.hi()
            );
            let v = self.oracle.try_call_replica(p, r)?;
            r += 1;
            queried.push(v);
            let bits = v.to_bits();
            let count = match tallies.iter_mut().find(|(b, _)| *b == bits) {
                Some((_, c)) => {
                    *c += 1;
                    *c
                }
                None => {
                    tallies.push((bits, 1));
                    1
                }
            };
            if count >= k {
                break v;
            }
        };
        let a = self.audit_mut();
        a.advance(p, r);
        a.stats.requeries += u64::from(r - start - 1);
        for v in queried {
            if v.to_bits() != winner.to_bits() {
                self.audit_mut().stats.detected += 1;
                self.note_corruption(p, CorruptionAction::Detected, v, winner, winner);
            }
        }
        Ok(winner)
    }

    /// Audited fresh resolution (`p` not yet known to the scheme).
    /// Voting mode accepts only quorum values; detection mode accepts the
    /// first answer iff it fits the certified `[TLB, TUB]` sandwich and
    /// escalates — trusted re-vote, then at worst a full re-verification
    /// sweep — when it does not.
    fn resolve_audited(&mut self, p: Pair) -> Result<f64, OracleError> {
        let policy = self.audit_mut().policy;
        if policy.always_votes() {
            let d = self.voted_value(p, policy.vote_k)?;
            self.scheme.record(p, d);
            self.stats.resolved += 1;
            return Ok(d);
        }
        // Detection mode. The sandwich is certified by previously accepted
        // values via the triangle inequality: a fresh value outside it is a
        // *proven* lie (no metric satisfies both), the violated bound being
        // the witness.
        let (lb, ub) = self.cached_bounds(p);
        let r0 = self.audit_mut().cursor(p);
        let v = self.oracle.try_call_replica(p, r0)?;
        self.audit_mut().advance(p, r0 + 1);
        if v >= lb - DECISION_EPS && v <= ub + DECISION_EPS {
            self.scheme.record(p, v);
            self.stats.resolved += 1;
            return Ok(v);
        }
        self.audit_mut().stats.detected += 1;
        self.note_corruption(p, CorruptionAction::Detected, v, lb, ub);
        // Quarantine + trusted re-query: the cursor already points past the
        // lying replica, and 2-of-n agreement screens the replacement. The
        // vote's first call is overhead too, hence the extra requery tick.
        let trusted = self.voted_value(p, 2)?;
        self.audit_mut().stats.requeries += 1;
        let fits = trusted >= lb - DECISION_EPS && trusted <= ub + DECISION_EPS;
        let (lb, ub) = if fits {
            (lb, ub)
        } else {
            // The trusted value also violates the sandwich, so the sandwich
            // itself descends from a lie accepted earlier. Re-verify every
            // recorded edge, retract the poisoned ones, recompute.
            self.repair_poisoned_state()?;
            self.bcache.clear();
            let (lb2, ub2) = self.scheme.bounds(p);
            invariant!(
                trusted >= lb2 - DECISION_EPS && trusted <= ub2 + DECISION_EPS,
                "trusted value {trusted} for ({}, {}) still violates repaired bounds \
                 [{lb2}, {ub2}]",
                p.lo(),
                p.hi()
            );
            (lb2, ub2)
        };
        self.audit_mut().stats.repaired += 1;
        self.note_corruption(p, CorruptionAction::Repaired, trusted, lb, ub);
        self.scheme.record(p, trusted);
        self.stats.resolved += 1;
        Ok(trusted)
    }

    /// Full-sweep repair: every recorded edge re-verified by trusted vote,
    /// poisoned ones retracted ([`BoundScheme::retract`]) and replaced.
    /// Call-quadratic by design — it runs only after a proven inconsistency
    /// that the local quarantine could not explain, i.e. after detection
    /// mode let a lie into the scheme.
    fn repair_poisoned_state(&mut self) -> Result<(), OracleError> {
        let k = self.audit_mut().policy.vote_k.max(2);
        let mut known = Vec::new();
        self.scheme.for_each_known(&mut |q, d| known.push((q, d)));
        for (q, d) in known {
            let truth = self.voted_value(q, k)?;
            self.audit_mut().stats.requeries += 1;
            if truth.to_bits() == d.to_bits() {
                continue;
            }
            let withdrawn = self.scheme.retract(q);
            invariant!(
                withdrawn,
                "scheme {} cannot retract a poisoned value; run with --vote K:N (K >= 2) \
                 so lies never enter it",
                self.scheme.name()
            );
            self.scheme.record(q, truth);
            let a = self.audit_mut();
            a.stats.retracted += 1;
            a.stats.repaired += 1;
            self.note_corruption(q, CorruptionAction::Retracted, d, truth, truth);
        }
        Ok(())
    }

    /// True when a probe needs to be observed (traced or metered).
    #[inline]
    fn observing(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// Emits one [`TraceEvent::BoundProbe`] and its width sample. One
    /// event per `try_*` invocation, keyed by the probe's primary pair.
    #[cold]
    fn note_probe(&self, x: Pair, lb: f64, ub: f64, kind: ProbeKind, verdict: ProbeVerdict) {
        if let Some(t) = &self.trace {
            t.emit(TraceEvent::BoundProbe {
                lo: x.lo(),
                hi: x.hi(),
                lb,
                ub,
                verdict,
                kind,
                scheme: self.scheme.name(),
            });
        }
        if let Some(m) = &self.metrics {
            m.observe("probe.width", quantize_width(ub - lb));
        }
    }

    /// `scheme.bounds(x)`, memoized per pair while still current (see the
    /// `bcache` field). Exact equality with the uncached computation is an
    /// invariant: the cached value was produced by the scheme itself, and
    /// the stamp check proves the scheme would still produce it.
    fn cached_bounds(&mut self, x: Pair) -> (f64, f64) {
        if !self.cache_on {
            return self.scheme.bounds(x);
        }
        let key = x.key();
        if let Some(&(lb, ub, gen)) = self.bcache.get(&key) {
            if self.scheme.pair_stamp(x) <= gen {
                return (lb, ub);
            }
        }
        let (lb, ub) = self.scheme.bounds(x);
        self.bcache.insert(key, (lb, ub, self.scheme.generation()));
        (lb, ub)
    }

    /// True when threshold probes may route through the scheme's goal-aware
    /// cascade ([`BoundScheme::bounds_for_goal`]). Traced runs bypass it:
    /// cascade tiers report *relaxed* (still sound, same-verdict) sandwich
    /// payloads, and committed traces pin the exact tier's `BoundProbe`
    /// events byte-for-byte (I8). The cascade only ever changes where a
    /// certified verdict comes from, never what it is.
    #[inline]
    fn cascade_on(&self) -> bool {
        self.trace.is_none() && self.scheme.goal_aware()
    }

    /// Threshold probe through the cascade: the goal-aware sibling of the
    /// exact-path bodies of `try_less_value` / `try_leq_value` (`leq`
    /// selects which). Produces the identical verdict — exact results run
    /// the identical decision function on identical bounds, and decisive
    /// results are certified by the scheme to agree (checked here in debug
    /// builds against a fresh exact sandwich).
    fn try_value_via_cascade(&mut self, x: Pair, v: f64, leq: bool) -> Option<bool> {
        // A fresh bcache entry *is* the exact sandwich; it outranks every
        // cascade tier and keeps cache accounting identical to the exact
        // path.
        let cached = if self.cache_on {
            self.bcache
                .get(&x.key())
                // Integer generation stamps, not distances. lint: allow(L3)
                .and_then(|&(lb, ub, gen)| (self.scheme.pair_stamp(x) <= gen).then_some((lb, ub)))
        } else {
            None
        };
        let (lb, ub, tier) = match cached {
            Some((lb, ub)) => (lb, ub, None),
            None => match self.scheme.bounds_for_goal(x, QueryGoal::threshold(v)) {
                GoalBounds::Exact { lb, ub } => {
                    if self.cache_on {
                        self.bcache
                            .insert(x.key(), (lb, ub, self.scheme.generation()));
                    }
                    (lb, ub, None)
                }
                GoalBounds::Decisive { lb, ub, tier } => {
                    if let Some(m) = &self.metrics {
                        m.inc(
                            match tier {
                                CascadeTier::Ado => "splub_ado_decisive",
                                CascadeTier::Bidi => "splub_bidi_early_exit",
                            },
                            1,
                        );
                    }
                    (lb, ub, Some(tier))
                }
            },
        };
        let decisive = tier.is_some();
        if !decisive {
            if let Some(m) = &self.metrics {
                m.inc("splub_full_fallback", 1);
            }
        }
        let kind = if leq {
            ProbeKind::LeqValue
        } else {
            ProbeKind::LessValue
        };
        if !decisive && lb == ub {
            // Exactly known (or pinched-exact) values carry no derivation
            // noise, so this compares as the oracle itself would — the same
            // fast path as the exact probe bodies. lint: allow(L3)
            let out = if leq { lb <= v } else { lb < v };
            self.dec_full += 1;
            if self.observing() {
                self.note_probe(x, lb, ub, kind, ProbeVerdict::Known);
            }
            return Some(out);
        }
        let out = if leq {
            if ub <= v - DECISION_EPS {
                Some(true)
            } else if lb > v + DECISION_EPS {
                Some(false)
            } else {
                None
            }
        } else if ub < v - DECISION_EPS {
            Some(true)
        } else if lb >= v + DECISION_EPS {
            Some(false)
        } else {
            None
        };
        #[cfg(debug_assertions)]
        if decisive {
            debug_assert!(out.is_some(), "Decisive cascade result failed to decide");
            let (le, ue) = self.scheme.bounds(x);
            let exact = if le == ue {
                // Same exactly-known fast path as above. lint: allow(L3)
                Some(if leq { le <= v } else { le < v })
            } else if leq {
                if ue <= v - DECISION_EPS {
                    Some(true)
                } else if le > v + DECISION_EPS {
                    Some(false)
                } else {
                    None
                }
            } else if ue < v - DECISION_EPS {
                Some(true)
            } else if le >= v + DECISION_EPS {
                Some(false)
            } else {
                None
            };
            debug_assert_eq!(
                out, exact,
                "cascade verdict diverged from the exact tier for {x:?} at v={v}"
            );
        }
        if out.is_some() {
            match tier {
                Some(CascadeTier::Ado) => self.dec_ado += 1,
                Some(CascadeTier::Bidi) => self.dec_bidi += 1,
                None => self.dec_full += 1,
            }
        }
        if self.observing() {
            let verdict = match out {
                Some(true) => ProbeVerdict::DecidedUb,
                Some(false) => ProbeVerdict::DecidedLb,
                None => ProbeVerdict::Inconclusive,
            };
            self.note_probe(x, lb, ub, kind, verdict);
        }
        out
    }

    /// Read access to the scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Mutable access to the scheme (e.g. for out-of-band recording).
    pub fn scheme_mut(&mut self) -> &mut S {
        &mut self.scheme
    }

    /// The wired oracle.
    pub fn oracle(&self) -> &'o Oracle<M> {
        self.oracle
    }
}

impl<'o, M: Metric> BoundResolver<'o, M, NoScheme> {
    /// The vanilla resolver: memoizes resolved pairs but derives nothing —
    /// every fresh comparison pays the oracle. Plugging this into an
    /// algorithm reproduces the paper's `Without Plug` call counts.
    pub fn vanilla(oracle: &'o Oracle<M>) -> Self {
        let scheme = NoScheme::new(oracle.n(), oracle.max_distance());
        BoundResolver::new(oracle, scheme)
    }
}

/// Shorthand for the unplugged configuration.
pub type VanillaResolver<'o, M> = BoundResolver<'o, M, NoScheme>;

impl<'o, M: Metric, S: BoundScheme> DistanceResolver for BoundResolver<'o, M, S> {
    fn n(&self) -> usize {
        self.scheme.n()
    }

    fn max_distance(&self) -> f64 {
        self.scheme.max_distance()
    }

    fn known(&self, p: Pair) -> Option<f64> {
        self.scheme.known(p)
    }

    fn resolve(&mut self, p: Pair) -> f64 {
        if let Some(d) = self.scheme.known(p) {
            self.stats.served_known += 1;
            return d;
        }
        if self.audit.is_some() {
            return expect_ok(
                self.resolve_audited(p),
                "infallible audited path hit a fault",
            );
        }
        let d = self.oracle.call_pair(p);
        self.scheme.record(p, d);
        self.stats.resolved += 1;
        d
    }

    fn resolve_fallible(&mut self, p: Pair) -> Result<f64, OracleError> {
        if let Some(d) = self.scheme.known(p) {
            self.stats.served_known += 1;
            return Ok(d);
        }
        if self.audit.is_some() {
            return self.resolve_audited(p);
        }
        // Record and count only on success: a faulted attempt must leave
        // the resolver exactly as it was, so a resumed run re-pays nothing
        // and observes nothing.
        let d = self.oracle.try_call_pair(p)?;
        self.scheme.record(p, d);
        self.stats.resolved += 1;
        Ok(d)
    }

    fn try_less(&mut self, x: Pair, y: Pair) -> Option<bool> {
        let (lx, ux) = self.cached_bounds(x);
        let (ly, uy) = self.cached_bounds(y);
        let out = if ux < ly - DECISION_EPS {
            Some(true) // dist(x) <= ub(x) < lb(y) <= dist(y)
        } else if lx >= uy + DECISION_EPS {
            Some(false) // dist(x) >= lb(x) >= ub(y) >= dist(y)
        } else {
            None
        };
        if self.observing() {
            let verdict = match out {
                Some(true) => ProbeVerdict::DecidedUb,
                Some(false) => ProbeVerdict::DecidedLb,
                None => ProbeVerdict::Inconclusive,
            };
            self.note_probe(x, lx, ux, ProbeKind::Less, verdict);
        }
        out
    }

    fn try_less_value(&mut self, x: Pair, v: f64) -> Option<bool> {
        if self.cascade_on() {
            return self.try_value_via_cascade(x, v, false);
        }
        let (lb, ub) = self.cached_bounds(x);
        if lb == ub {
            if self.observing() {
                self.note_probe(x, lb, ub, ProbeKind::LessValue, ProbeVerdict::Known);
            }
            // Exactly known (recorded) values carry no derivation noise,
            // so this compares as the oracle itself would. lint: allow(L3)
            return Some(lb < v);
        }
        let out = if ub < v - DECISION_EPS {
            Some(true)
        } else if lb >= v + DECISION_EPS {
            Some(false)
        } else {
            None
        };
        if self.observing() {
            let verdict = match out {
                Some(true) => ProbeVerdict::DecidedUb,
                Some(false) => ProbeVerdict::DecidedLb,
                None => ProbeVerdict::Inconclusive,
            };
            self.note_probe(x, lb, ub, ProbeKind::LessValue, verdict);
        }
        out
    }

    fn try_leq_value(&mut self, x: Pair, v: f64) -> Option<bool> {
        if self.cascade_on() {
            return self.try_value_via_cascade(x, v, true);
        }
        let (lb, ub) = self.cached_bounds(x);
        if lb == ub {
            if self.observing() {
                self.note_probe(x, lb, ub, ProbeKind::LeqValue, ProbeVerdict::Known);
            }
            // Exactly known value: compare as the oracle would. lint: allow(L3)
            return Some(lb <= v);
        }
        let out = if ub <= v - DECISION_EPS {
            Some(true)
        } else if lb > v + DECISION_EPS {
            Some(false)
        } else {
            None
        };
        if self.observing() {
            let verdict = match out {
                Some(true) => ProbeVerdict::DecidedUb,
                Some(false) => ProbeVerdict::DecidedLb,
                None => ProbeVerdict::Inconclusive,
            };
            self.note_probe(x, lb, ub, ProbeKind::LeqValue, verdict);
        }
        out
    }

    fn try_less_sum2(&mut self, x: (Pair, Pair), y: (Pair, Pair)) -> Option<bool> {
        let (lx0, ux0) = self.cached_bounds(x.0);
        let (lx1, ux1) = self.cached_bounds(x.1);
        let (ly0, uy0) = self.cached_bounds(y.0);
        let (ly1, uy1) = self.cached_bounds(y.1);
        // A small safety margin absorbs the rounding of summed bounds; the
        // near-tie cases fall through and are compared exactly.
        let out = if ux0 + ux1 < ly0 + ly1 - DECISION_EPS {
            Some(true)
        } else if lx0 + lx1 >= uy0 + uy1 + DECISION_EPS {
            Some(false)
        } else {
            None
        };
        if self.observing() {
            let verdict = match out {
                Some(true) => ProbeVerdict::DecidedUb,
                Some(false) => ProbeVerdict::DecidedLb,
                None => ProbeVerdict::Inconclusive,
            };
            // The event is keyed by the lead pair of the left sum and
            // carries the summed interval of that side.
            self.note_probe(x.0, lx0 + lx1, ux0 + ux1, ProbeKind::Sum2, verdict);
        }
        out
    }

    fn lower_bound_hint(&mut self, x: Pair) -> f64 {
        self.cached_bounds(x).0
    }

    fn bounds_hint(&mut self, x: Pair) -> (f64, f64) {
        self.cached_bounds(x)
    }

    fn preload(&mut self, p: Pair, d: f64) {
        self.scheme.record(p, d);
        self.stats.preloaded += 1;
    }

    fn preload_weak(&mut self, p: Pair, d: f64) {
        self.scheme.record(p, d);
        // Billed as a resolution (the caller observed a fresh value through
        // the resolver) but attributed to the weak-quorum provenance row.
        self.stats.resolved += 1;
        self.weak_preloads += 1;
    }

    fn provenance(&self) -> ProvenanceLedger {
        use prox_obs::ResolutionSource as Src;
        let mut l = ProvenanceLedger::default();
        l.memo = self.stats.served_known;
        l.weak_quorum = self.weak_preloads;
        l.strong_call = self.stats.resolved.saturating_sub(self.weak_preloads);
        l.checkpoint_preload = self.stats.preloaded;
        let scheme = self.scheme.name();
        for (tier, count) in [
            ("ado", self.dec_ado),
            ("bidi", self.dec_bidi),
            ("full", self.dec_full),
        ] {
            if count > 0 {
                l.add(Src::BoundDecisive { scheme, tier }, count);
            }
        }
        let cascade = self.dec_ado + self.dec_bidi + self.dec_full;
        let direct = self.stats.decided_by_bounds.saturating_sub(cascade);
        if direct > 0 {
            l.add(
                Src::BoundDecisive {
                    scheme,
                    tier: "direct",
                },
                direct,
            );
        }
        l
    }

    fn export_known(&self, out: &mut Vec<(Pair, f64)>) {
        self.scheme.for_each_known(&mut |p, d| out.push((p, d)));
    }

    fn corruption_stats(&self) -> CorruptionStats {
        self.audit.as_ref().map(|a| a.stats).unwrap_or_default()
    }

    fn prune_stats(&self) -> PruneStats {
        self.stats
    }

    fn prune_stats_mut(&mut self) -> &mut PruneStats {
        &mut self.stats
    }

    fn generation(&self) -> u64 {
        self.scheme.generation()
    }

    fn pair_stamp(&self, x: Pair) -> u64 {
        self.scheme.pair_stamp(x)
    }

    fn spec(&self) -> Option<&dyn SpecBounds> {
        self.scheme.spec()
    }

    fn trace_sink(&self) -> Option<Rc<dyn TraceSink>> {
        self.trace.clone()
    }

    fn obs_metrics(&self) -> Option<Rc<Metrics>> {
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TriScheme;
    use prox_core::{FnMetric, ObjectId};

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn resolve_memoizes() {
        let oracle = line_oracle(10);
        let mut r = BoundResolver::new(&oracle, TriScheme::new(10, 1.0));
        let p = Pair::new(0, 9);
        assert_eq!(r.resolve(p), 1.0);
        assert_eq!(r.resolve(p), 1.0);
        assert_eq!(oracle.calls(), 1, "second resolve served from knowledge");
        assert_eq!(r.prune_stats().served_known, 1);
        assert_eq!(r.prune_stats().resolved, 1);
    }

    #[test]
    fn bounds_decide_comparisons_without_calls() {
        let oracle = line_oracle(11); // unit spacing 0.1
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0));
        // Teach the scheme two triangles.
        r.resolve(Pair::new(0, 5)); // 0.5
        r.resolve(Pair::new(5, 6)); // 0.1  -> d(0,6) in [0.4, 0.6]
        r.resolve(Pair::new(0, 1)); // 0.1
        r.resolve(Pair::new(1, 2)); // 0.1  -> d(0,2) in [0.0, 0.2]
        let calls = oracle.calls();
        // d(0,2)=0.2 < d(0,6)=0.6 and ub(0,2)=0.2 < lb(0,6)=0.4: decided.
        assert_eq!(r.try_less(Pair::new(0, 2), Pair::new(0, 6)), Some(true));
        assert!(r.less(Pair::new(0, 2), Pair::new(0, 6)));
        assert_eq!(oracle.calls(), calls, "decided by bounds, no oracle");
        assert_eq!(r.prune_stats().decided_by_bounds, 1);
    }

    #[test]
    fn inconclusive_falls_through() {
        let oracle = line_oracle(11);
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0));
        assert_eq!(r.try_less(Pair::new(0, 2), Pair::new(0, 6)), None);
        assert!(r.less(Pair::new(0, 2), Pair::new(0, 6)));
        assert_eq!(oracle.calls(), 2, "both sides resolved");
        assert_eq!(r.prune_stats().fell_through, 1);
    }

    #[test]
    fn distance_if_less_prunes() {
        let oracle = line_oracle(11);
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0));
        r.resolve(Pair::new(0, 5)); // 0.5
        r.resolve(Pair::new(5, 10)); // 0.5 -> d(0,10) in [0, 1.0]; lb via |.5-.5|=0
        r.resolve(Pair::new(5, 6)); // 0.1 -> d(0,6) in [0.4, 0.6]
        let calls = oracle.calls();
        // Threshold 0.3 < lb(0,6)=0.4: pruned without resolution.
        assert_eq!(r.distance_if_less(Pair::new(0, 6), 0.3), None);
        assert_eq!(oracle.calls(), calls);
        // Threshold 0.7 > ub(0,6)=0.6: surely less, value resolved.
        let d = r.distance_if_less(Pair::new(0, 6), 0.7).unwrap();
        assert!((d - 0.6).abs() < 1e-12, "got {d}");
        assert_eq!(oracle.calls(), calls + 1);
        // Inconclusive: resolves and tests (d(0,1)=0.1 < 0.2).
        assert_eq!(r.distance_if_less(Pair::new(0, 1), 0.2), Some(0.1));
    }

    #[test]
    fn distance_if_less_exact_boundary() {
        // dist == v must report "not less" (strict comparison).
        let oracle = line_oracle(11);
        let mut r = BoundResolver::vanilla(&oracle);
        assert_eq!(r.distance_if_less(Pair::new(0, 5), 0.5), None);
        assert_eq!(oracle.calls(), 1, "vanilla resolves to find out");
    }

    #[test]
    fn vanilla_never_decides() {
        let oracle = line_oracle(8);
        let mut r = BoundResolver::vanilla(&oracle);
        assert_eq!(r.try_less(Pair::new(0, 1), Pair::new(0, 7)), None);
        assert_eq!(r.try_less_value(Pair::new(0, 1), 0.5), None);
        assert!(r.less(Pair::new(0, 1), Pair::new(0, 7)));
        assert_eq!(oracle.calls(), 2);
        // But known values do decide (memoization).
        assert_eq!(r.try_less(Pair::new(0, 1), Pair::new(0, 7)), Some(true));
    }

    #[test]
    fn known_pair_one_sided_test() {
        let oracle = line_oracle(11);
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0));
        r.resolve(Pair::new(0, 2)); // 0.2 exact
        r.resolve(Pair::new(0, 5)); // 0.5
        r.resolve(Pair::new(5, 6)); // -> d(0,6) in [0.4, 0.6]
        let calls = oracle.calls();
        // known 0.2 < lb 0.4: decided.
        assert_eq!(r.try_less(Pair::new(0, 2), Pair::new(0, 6)), Some(true));
        // reversed: lb(0,6)=0.4 >= ub(0,2)=0.2 -> Some(false).
        assert_eq!(r.try_less(Pair::new(0, 6), Pair::new(0, 2)), Some(false));
        assert_eq!(oracle.calls(), calls);
    }

    #[test]
    fn sum_probe_interval_default() {
        // The provided `try_sum_less_value` sums per-term interval bounds.
        let oracle = line_oracle(11);
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0));
        r.resolve(Pair::new(0, 2)); // 0.2
        r.resolve(Pair::new(0, 5)); // 0.5
        r.resolve(Pair::new(5, 6)); // -> d(0,6) in [0.4, 0.6]
        r.resolve(Pair::new(5, 8)); // -> d(0,8) in [0.2, 0.8] via 0/5/8
        let calls = oracle.calls();
        let terms = [Pair::new(0, 6), Pair::new(0, 8)];
        // Interval sum: [0.6, 1.4].
        assert_eq!(r.try_sum_less_value(&terms, 1.5), Some(true));
        assert_eq!(r.try_sum_less_value(&terms, 0.55), Some(false));
        assert_eq!(r.try_sum_less_value(&terms, 1.0), None, "straddles");
        // Known terms contribute exact point intervals.
        assert_eq!(
            r.try_sum_less_value(&[Pair::new(0, 2), Pair::new(0, 5)], 0.71),
            Some(true)
        );
        // Empty sum is zero.
        assert_eq!(r.try_sum_less_value(&[], 0.1), Some(true));
        assert_eq!(r.try_sum_less_value(&[], -0.1), Some(false));
        assert_eq!(oracle.calls(), calls, "probes never call the oracle");

        // Vanilla (no scheme): unknown terms span [0, max], nothing decides
        // except trivial thresholds.
        let oracle = line_oracle(11);
        let mut v = BoundResolver::vanilla(&oracle);
        assert_eq!(v.try_sum_less_value(&terms, 1.0), None);
        assert_eq!(v.try_sum_less_value(&terms, 2.5), Some(true));
        assert_eq!(oracle.calls(), 0);
    }

    #[test]
    fn fallible_path_matches_infallible_accounting() {
        let run = |fallible: bool| {
            let oracle = line_oracle(11);
            let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0));
            let d = if fallible {
                r.resolve_fallible(Pair::new(0, 5)).expect("no faults")
            } else {
                r.resolve(Pair::new(0, 5))
            };
            let lt = if fallible {
                r.less_fallible(Pair::new(0, 2), Pair::new(0, 6))
                    .expect("no faults")
            } else {
                r.less(Pair::new(0, 2), Pair::new(0, 6))
            };
            (d, lt, oracle.calls(), r.prune_stats())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn probes_are_traced_one_event_per_try() {
        use prox_obs::{summarize, JsonlSink};
        let sink = Rc::new(JsonlSink::in_memory());
        let make = || {
            let scale = 1.0 / 10.0;
            FnMetric::new(11, 1.0, move |a: ObjectId, b: ObjectId| {
                (f64::from(a) - f64::from(b)).abs() * scale
            })
        };
        let oracle = Oracle::new(make()).with_trace(Rc::<JsonlSink>::clone(&sink));
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0));
        r.resolve(Pair::new(0, 5)); // 0.5
        r.resolve(Pair::new(5, 6)); // -> d(0,6) in [0.4, 0.6]
        r.resolve(Pair::new(0, 2)); // 0.2 exact
        assert!(r.less(Pair::new(0, 2), Pair::new(0, 6))); // decided
        assert_eq!(r.distance_if_less(Pair::new(0, 6), 0.3), None); // decided
        assert_eq!(r.distance_if_leq(Pair::new(0, 2), 0.2), Some(0.2)); // known
        assert!(r.less(Pair::new(0, 7), Pair::new(0, 8))); // falls through

        let s = summarize(&sink.contents().expect("mem sink")).expect("valid trace");
        let stats = r.prune_stats();
        assert_eq!(
            s.probes,
            stats.comparisons(),
            "one BoundProbe per comparison attempt"
        );
        assert_eq!(s.billed_calls, oracle.calls(), "calls reconcile too");
        let tri = s.prune.iter().find(|p| p.scheme == "Tri").expect("Tri row");
        assert_eq!(
            tri.known + tri.lb + tri.ub,
            stats.decided_by_bounds,
            "decided verdicts reconcile with PruneStats"
        );
        assert_eq!(tri.open, stats.fell_through);
    }

    #[test]
    fn untraced_resolver_reports_no_sink() {
        let oracle = line_oracle(4);
        let r = BoundResolver::vanilla(&oracle);
        assert!(r.trace_sink().is_none());
        assert!(r.obs_metrics().is_none());
    }

    #[test]
    fn voting_restores_exactness_under_corruption() {
        use prox_core::CorruptionInjector;
        let n = 24;
        let scale = 1.0 / (n as f64 - 1.0);
        let truth = move |p: Pair| (f64::from(p.lo()) - f64::from(p.hi())).abs() * scale;
        let pairs: Vec<Pair> = Pair::all(n).step_by(7).collect();

        // Clean baseline.
        let clean = line_oracle(n);
        let mut cr = BoundResolver::new(&clean, TriScheme::new(n, 1.0));
        for &p in &pairs {
            assert_eq!(cr.resolve(p), truth(p));
        }
        let clean_billed = clean.calls();

        // Corrupted oracle + 3-vote audit: byte-identical results, honest
        // billing, and exact detection accounting.
        let oracle = line_oracle(n).with_corruption(CorruptionInjector::new(0.3, 42));
        let mut r =
            BoundResolver::new(&oracle, TriScheme::new(n, 1.0)).with_audit(AuditPolicy::vote(3, 3));
        for &p in &pairs {
            assert_eq!(r.resolve(p).to_bits(), truth(p).to_bits(), "{p:?}");
        }
        let stats = r.corruption_stats();
        assert!(
            oracle.corruptions_injected() > 0,
            "rate 0.3 must fire on this workload"
        );
        assert_eq!(
            stats.detected,
            oracle.corruptions_injected(),
            "every injected corruption loses its vote and is detected"
        );
        assert_eq!(
            oracle.calls(),
            clean_billed + stats.requeries,
            "re-queries are billed honestly"
        );
        assert_eq!(stats.retracted, 0, "voting never lets a lie be recorded");
        // Exported knowledge is truth-exact.
        let mut known = Vec::new();
        r.export_known(&mut known);
        for (p, d) in known {
            assert_eq!(d.to_bits(), truth(p).to_bits());
        }
    }

    #[test]
    fn clean_vote_pays_exactly_k_replicas() {
        let oracle = line_oracle(11);
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0))
            .with_audit(AuditPolicy::vote(3, 3));
        assert_eq!(r.resolve(Pair::new(0, 5)), 0.5);
        assert_eq!(oracle.calls(), 3, "first-to-3 with a clean oracle");
        assert_eq!(r.corruption_stats().requeries, 2);
        assert_eq!(r.corruption_stats().detected, 0);
        // Known pairs are served without further votes.
        assert_eq!(r.resolve(Pair::new(0, 5)), 0.5);
        assert_eq!(oracle.calls(), 3);
    }

    #[test]
    fn detection_mode_catches_sandwich_violations() {
        use prox_core::CorruptionInjector;
        let truth: f64 = 6.0 * (1.0 / 10.0); // the oracle's own arithmetic for d(0,6)
        let mut caught = None;
        for seed in 0..300 {
            let oracle = line_oracle(11).with_corruption(CorruptionInjector::new(0.5, seed));
            let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0))
                .with_audit(AuditPolicy::detect_only());
            // Certified sandwich for (0,6): [0.4, 0.6] via the 0/5/6 triangle.
            r.preload(Pair::new(0, 5), 0.5);
            r.preload(Pair::new(5, 6), 0.1);
            let d = r.resolve(Pair::new(0, 6));
            let stats = r.corruption_stats();
            if stats.detected >= 1 && stats.retracted == 0 {
                assert_eq!(d.to_bits(), truth.to_bits(), "repaired to truth");
                assert_eq!(stats.repaired, 1, "one trusted replacement");
                assert!(stats.requeries >= 2, "quarantine re-queried by vote");
                assert_eq!(
                    oracle.calls(),
                    1 + stats.requeries,
                    "a clean run resolves (0,6) in one call"
                );
                caught = Some(seed);
                break;
            }
        }
        assert!(
            caught.is_some(),
            "no seed in 0..300 produced an out-of-sandwich replica-0 corruption"
        );
    }

    #[test]
    fn detection_mode_accepts_clean_values_for_free() {
        let oracle = line_oracle(11);
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0))
            .with_audit(AuditPolicy::detect_only());
        r.resolve(Pair::new(0, 5));
        r.resolve(Pair::new(5, 6));
        r.resolve(Pair::new(0, 6));
        assert_eq!(oracle.calls(), 3, "zero audit overhead without lies");
        assert_eq!(r.corruption_stats(), Default::default());
    }

    #[test]
    fn poisoned_state_sweep_retracts_and_repairs() {
        use prox_core::CorruptionInjector;
        // A lie accepted under a trivial sandwich poisons later sandwiches;
        // when the trusted re-query still violates them, the resolver must
        // sweep, retract the poisoned edge, and end truth-exact.
        let mut swept = None;
        for seed in 0..2000 {
            let inj = CorruptionInjector::new(0.5, seed);
            // Pre-filter: (0,5) corrupt at replica 0 (the lie that gets
            // in), (5,6) and (0,6) clean at replica 0 (so the detection
            // fires on a *true* value and the trusted vote re-confirms it).
            if inj.corruption_at(Pair::new(0, 5), 0).is_none()
                || inj.corruption_at(Pair::new(5, 6), 0).is_some()
                || inj.corruption_at(Pair::new(0, 6), 0).is_some()
            {
                continue;
            }
            let oracle = line_oracle(11).with_corruption(inj);
            let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0))
                .with_audit(AuditPolicy::detect_only());
            r.resolve(Pair::new(0, 5)); // lie enters: sandwich is [0, 1]
            r.resolve(Pair::new(5, 6)); // clean 0.1, no triangle yet
            let d = r.resolve(Pair::new(0, 6));
            let stats = r.corruption_stats();
            if stats.retracted >= 1 {
                let scale: f64 = 1.0 / 10.0;
                assert_eq!(d.to_bits(), (6.0 * scale).to_bits());
                assert_eq!(
                    r.known(Pair::new(0, 5)),
                    Some(5.0 * scale),
                    "poisoned edge replaced by the trusted value"
                );
                assert_eq!(r.known(Pair::new(5, 6)), Some(1.0 * scale));
                assert!(stats.detected >= 1);
                assert!(stats.repaired >= 2, "sweep repair + local repair");
                swept = Some(seed);
                break;
            }
        }
        assert!(
            swept.is_some(),
            "no seed in 0..2000 exercised the poisoned-state sweep"
        );
    }

    #[test]
    fn fallible_audited_path_matches_infallible() {
        use prox_core::CorruptionInjector;
        let run = |fallible: bool| {
            let oracle = line_oracle(11).with_corruption(CorruptionInjector::new(0.4, 9));
            let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0))
                .with_audit(AuditPolicy::vote(2, 3));
            let mut out = Vec::new();
            for p in Pair::all(11).step_by(5) {
                let d = if fallible {
                    r.resolve_fallible(p).expect("no fail-stop faults")
                } else {
                    r.resolve(p)
                };
                out.push(d.to_bits());
            }
            (out, oracle.calls(), r.corruption_stats())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn corruption_events_reconcile_with_stats() {
        use prox_core::CorruptionInjector;
        use prox_obs::{summarize, JsonlSink};
        let sink = Rc::new(JsonlSink::in_memory());
        let scale = 1.0 / 10.0;
        let oracle = Oracle::new(FnMetric::new(11, 1.0, move |a: ObjectId, b: ObjectId| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
        .with_corruption(CorruptionInjector::new(0.3, 42))
        .with_trace(Rc::<JsonlSink>::clone(&sink));
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0))
            .with_audit(AuditPolicy::vote(3, 3));
        for p in Pair::all(11).step_by(3) {
            r.resolve(p);
        }
        let s = summarize(&sink.contents().expect("mem sink")).expect("valid trace");
        let stats = r.corruption_stats();
        assert!(stats.detected > 0, "workload must trip the injector");
        assert_eq!(s.corruption_detected, stats.detected);
        assert_eq!(s.corruption_repaired, stats.repaired);
        assert_eq!(s.corruption_retracted, stats.retracted);
        assert_eq!(s.billed_calls, oracle.calls());
    }

    #[test]
    fn failed_resolution_records_nothing() {
        use prox_core::{CallBudget, OracleError};
        let scale = 1.0 / 10.0;
        let oracle = Oracle::new(FnMetric::new(11, 1.0, move |a: u32, b: u32| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
        .with_budget(CallBudget::calls(1));
        let mut r = BoundResolver::new(&oracle, TriScheme::new(11, 1.0));
        assert_eq!(r.resolve_fallible(Pair::new(0, 5)), Ok(0.5));
        let err = r
            .resolve_fallible(Pair::new(0, 7))
            .expect_err("budget of 1 call");
        assert_eq!(err, OracleError::BudgetExhausted { calls: 1 });
        assert_eq!(r.prune_stats().resolved, 1, "failed attempt not counted");
        assert_eq!(r.known(Pair::new(0, 7)), None, "nothing recorded");
        // The already-resolved pair is still served for free.
        assert_eq!(r.resolve_fallible(Pair::new(0, 5)), Ok(0.5));
        assert_eq!(r.prune_stats().served_known, 1);
    }
}
