//! The weak → bounds → strong resolution cascade and graceful degradation.
//!
//! [`CascadeResolver`] wraps any [`DistanceResolver`] and adds a cheap
//! noisy tier in front of it, in strict cost order:
//!
//! 1. **known / bounds** — the inner resolver's certified state answers
//!    comparisons for free exactly as before (the cascade forwards every
//!    `try_*` verdict untouched; the weak tier never decides a
//!    comparison).
//! 2. **weak** — a fresh *resolution* first asks the
//!    [`prox_core::WeakOracle`] for a first-to-`k` bit-exact quorum
//!    (attempts `0, 1, 2, …`, capped at [`VOTE_CAP`], mirroring the I9
//!    replica vote). Because clean weak probes return the ground truth
//!    bit-for-bit and errors are keyed by `(pair, attempt)`, a quorum
//!    value *is* the truth up to the colliding-lie residual documented
//!    for I9. The quorum value is then sandwich-checked against the
//!    certified `[TLB, TUB]` interval — the same untrusted-value
//!    treatment the corruption auditor applies: a quorum that escapes
//!    its sandwich is a *proven* weak lie, the pair is quarantined from
//!    the weak tier, and the resolution escalates.
//! 3. **strong** — the inner resolver's usual (audited, retried,
//!    budgeted) resolution path.
//!
//! Every weak-served resolution is recorded into the inner scheme via
//! `preload` and billed to `PruneStats::resolved`, so with a healthy
//! strong tier the cascade's outputs, prune counters and exported
//! distances are byte-identical to a strong-only run while
//! `strong_calls + weak_resolutions == strong_only_calls` (invariant
//! I10).
//!
//! ## Graceful degradation
//!
//! With [`CascadeResolver::with_degrade`] enabled, a `BudgetExhausted` or
//! `Permanent` failure from the strong tier no longer aborts the run: the
//! cascade emits [`TraceEvent::Degraded`], remembers the exhaustion
//! point, and serves every later fresh resolution from the weak tier and
//! the certified bounds alone, classifying each decision:
//!
//! - **certified** — a weak quorum passed its sandwich (still exact up to
//!   the colliding-lie residual);
//! - **weak-only** — no quorum, but the first weak answer sat inside its
//!   sandwich and was served as-is;
//! - **unresolved** — nothing trustworthy; the certified interval
//!   midpoint was served.
//!
//! Degraded values are memoized per pair (never recorded into the inner
//! scheme — they are uncertified and must not contaminate bounds or the
//! persisted cache) so repeated resolutions stay self-consistent, and the
//! whole degraded tail is a pure function of the weak seed and the
//! exhaustion point. Retryable faults (`Transient`/`Timeout`) still
//! surface as errors — degradation is for the two terminal losses only.
//!
//! ## Threading
//!
//! Weak votes run on the sequential resolution path only: speculation
//! workers read `SpecBounds` snapshots (forwarded from the inner
//! resolver) and never resolve, so `weak_probe` trace events replay in
//! commit order and the semantic stream stays thread-invariant (I8
//! composes with I10).

use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use prox_core::invariant;
use prox_core::invariant::expect_ok;
use prox_core::weak::{Degradation, DegradationReport, DegradeReason, WeakOracle};
use prox_core::{Metric, OracleError, Pair, PruneStats, SpecBounds};
use prox_obs::{Metrics, ProvenanceLedger, ResolutionSource, TraceEvent, TraceSink, WeakOutcome};

use crate::audit::{CorruptionStats, VOTE_CAP};
use crate::resolver::DECISION_EPS;
use crate::DistanceResolver;

/// Weak-tier accounting, shaped like [`CorruptionStats`]: a plain counter
/// bundle surfaced through [`DistanceResolver::weak_stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WeakStats {
    /// Weak-oracle probes issued (cheap calls; never billed to the
    /// strong oracle).
    pub probes: u64,
    /// Probes whose returned bits differed from the truth (injected
    /// errors).
    pub errors_injected: u64,
    /// Fresh resolutions served by weak quorum + sandwich — each one a
    /// strong call saved.
    pub resolutions: u64,
    /// Quorum values that violated their certified sandwich (proven
    /// weak lies; the pair is quarantined).
    pub lies_detected: u64,
    /// Votes that hit the attempt cap without a quorum and escalated to
    /// the strong tier.
    pub no_quorum: u64,
}

/// How one weak vote over a fresh pair ended (internal).
enum WeakVote {
    /// `k` attempts agreed bit-exactly on `value`.
    Quorum { value: f64, attempts: u32 },
    /// The cap ran out first; `first` is attempt 0's answer (the
    /// degraded-mode fallback candidate).
    NoQuorum { first: f64, attempts: u32 },
}

/// The weak → bounds → strong cascade; see the module docs.
///
/// The weak oracle must wrap the *same* ground truth as the strong tier:
/// the error model is the seeded schedule, not a divergent metric. A
/// weak tier wrapping a different metric behaves like a permanently
/// lying oracle — lies that escape their sandwich are still caught and
/// quarantined, but in-sandwich divergence would break I10.
pub struct CascadeResolver<R, M> {
    inner: R,
    weak: WeakOracle<M>,
    /// Quorum size for the weak vote (≥ 2; a single weak answer is never
    /// trustworthy, and the sandwich alone cannot certify bit-exactness).
    vote_k: u32,
    /// Whether terminal strong-tier losses degrade instead of erroring.
    degrade: bool,
    /// `Some` once the strong tier is lost.
    degraded: Option<Degradation>,
    /// Pairs whose weak quorum was proven a lie; the weak tier is never
    /// consulted for them again.
    quarantined: BTreeSet<u64>,
    /// Degraded-mode served values (bit-stable memo, keyed by pair key).
    /// Never recorded into the inner scheme: these are uncertified.
    fallback: BTreeMap<u64, u64>,
    /// Repeat serves out of `fallback` — provenance-billed as degraded
    /// midpoints alongside the fresh serves counted in the report.
    fallback_hits: u64,
    resolutions: u64,
    lies: u64,
    no_quorum: u64,
    trace: Option<Rc<dyn TraceSink>>,
    metrics: Option<Rc<Metrics>>,
}

impl<R: DistanceResolver, M: Metric> CascadeResolver<R, M> {
    /// Wraps `inner` with a weak tier. The weak oracle's space must match
    /// the resolver's.
    pub fn new(inner: R, weak: WeakOracle<M>) -> Self {
        invariant!(
            weak.len() == inner.n(),
            "weak oracle covers {} objects but the resolver covers {}",
            weak.len(),
            inner.n()
        );
        let trace = inner.trace_sink();
        let metrics = inner.obs_metrics();
        CascadeResolver {
            inner,
            weak,
            vote_k: 2,
            degrade: false,
            degraded: None,
            quarantined: BTreeSet::new(),
            fallback: BTreeMap::new(),
            fallback_hits: 0,
            resolutions: 0,
            lies: 0,
            no_quorum: 0,
            trace,
            metrics,
        }
    }

    /// Sets the weak quorum size (≥ 2).
    pub fn with_vote_k(mut self, k: u32) -> Self {
        invariant!(k >= 2, "weak vote quorum must be at least 2, got {k}");
        self.vote_k = k;
        self
    }

    /// Enables graceful degradation: terminal strong-tier losses
    /// (`BudgetExhausted`/`Permanent`) switch the cascade to
    /// weak+bounds-only service instead of surfacing the error.
    pub fn with_degrade(mut self, on: bool) -> Self {
        self.degrade = on;
        self
    }

    /// The inner resolver.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// The weak oracle.
    pub fn weak(&self) -> &WeakOracle<M> {
        &self.weak
    }

    /// Unwraps the cascade, dropping weak-tier state.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// First-to-`k` bit-exact weak vote over `p` (attempts `0..VOTE_CAP`).
    ///
    /// Saturated answers — exactly `0` or exactly `max_distance` — never
    /// count toward a quorum: the error model clamps lies into
    /// `[0, max]`, which concentrates them onto the interval endpoints,
    /// so endpoint collisions between two independent lies are *common*
    /// rather than astronomically rare. A pair whose weak answers
    /// saturate simply escalates to the strong tier (a true distance of
    /// exactly `max_distance` forfeits its weak saving but stays exact).
    fn weak_vote(&self, p: Pair) -> WeakVote {
        let max = self.weak.max_distance();
        let mut counts: Vec<(u64, u32)> = Vec::new();
        let mut first = 0.0f64;
        for attempt in 0..VOTE_CAP {
            let v = self.weak.probe(p, attempt);
            if attempt == 0 {
                first = v;
            }
            if v == 0.0 || v == max {
                continue;
            }
            let bits = v.to_bits();
            let count = match counts.iter_mut().find(|(b, _)| *b == bits) {
                Some((_, c)) => {
                    *c += 1;
                    *c
                }
                None => {
                    counts.push((bits, 1));
                    1
                }
            };
            if count >= self.vote_k {
                return WeakVote::Quorum {
                    value: v,
                    attempts: attempt + 1,
                };
            }
        }
        WeakVote::NoQuorum {
            first,
            attempts: VOTE_CAP,
        }
    }

    /// Whether `value` sits inside the certified sandwich `[lb, ub]`
    /// (with the standard decision margin).
    fn in_sandwich(value: f64, lb: f64, ub: f64) -> bool {
        value >= lb - DECISION_EPS && value <= ub + DECISION_EPS
    }

    #[cold]
    fn note_weak(&self, p: Pair, attempts: u32, outcome: WeakOutcome) {
        if let Some(t) = &self.trace {
            t.emit(TraceEvent::WeakProbe {
                lo: p.lo(),
                hi: p.hi(),
                attempts,
                outcome,
            });
        }
        if let Some(m) = &self.metrics {
            m.inc(
                match outcome {
                    WeakOutcome::Resolved => "cascade.weak_resolved",
                    WeakOutcome::Lie => "cascade.weak_lies",
                    WeakOutcome::NoQuorum => "cascade.weak_no_quorum",
                },
                1,
            );
        }
    }

    /// Flips the cascade into degraded mode after a terminal strong-tier
    /// loss.
    #[cold]
    fn enter_degraded(&mut self, e: &OracleError) {
        let (reason, calls) = match e {
            OracleError::BudgetExhausted { calls } => (DegradeReason::BudgetExhausted, *calls),
            _ => (DegradeReason::Permanent, 0),
        };
        self.degraded = Some(Degradation {
            reason,
            report: DegradationReport {
                strong_calls_at_loss: calls,
                ..DegradationReport::default()
            },
        });
        if let Some(t) = &self.trace {
            t.emit(TraceEvent::Degraded {
                strong_calls: calls,
                reason: reason.name(),
            });
        }
        if let Some(m) = &self.metrics {
            m.inc("cascade.degraded", 1);
        }
    }

    /// Serves a fresh pair after the strong tier is lost. `vote` is the
    /// weak vote already taken for this resolution (`None` when the pair
    /// is quarantined from the weak tier).
    fn degraded_value(&mut self, p: Pair, vote: Option<WeakVote>) -> f64 {
        let (lb, ub) = self.inner.bounds_hint(p);
        let report = match self.degraded.as_mut() {
            Some(d) => &mut d.report,
            // Unreachable: callers only get here with `degraded` set.
            None => return 0.5 * (lb + ub),
        };
        let value = match vote {
            Some(WeakVote::NoQuorum { first, .. }) if Self::in_sandwich(first, lb, ub) => {
                report.weak_only += 1;
                first
            }
            _ => {
                report.unresolved += 1;
                0.5 * (lb + ub)
            }
        };
        self.fallback.insert(p.key(), value.to_bits());
        value
    }
}

impl<R: DistanceResolver, M: Metric> DistanceResolver for CascadeResolver<R, M> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn max_distance(&self) -> f64 {
        self.inner.max_distance()
    }

    fn known(&self, p: Pair) -> Option<f64> {
        // Only certified knowledge counts; degraded-mode fallback values
        // are deliberately invisible here.
        self.inner.known(p)
    }

    fn resolve(&mut self, p: Pair) -> f64 {
        expect_ok(self.resolve_fallible(p), "cascade resolve")
    }

    fn resolve_fallible(&mut self, p: Pair) -> Result<f64, OracleError> {
        if let Some(&bits) = self.fallback.get(&p.key()) {
            self.fallback_hits += 1;
            return Ok(f64::from_bits(bits));
        }
        if self.inner.known(p).is_some() {
            return self.inner.resolve_fallible(p);
        }

        // Fresh pair: weak tier first (unless quarantined).
        let vote = if self.quarantined.contains(&p.key()) {
            None
        } else {
            Some(self.weak_vote(p))
        };
        if let Some(WeakVote::Quorum { value, attempts }) = vote {
            let (lb, ub) = self.inner.bounds_hint(p);
            if Self::in_sandwich(value, lb, ub) {
                self.note_weak(p, attempts, WeakOutcome::Resolved);
                self.resolutions += 1;
                // Record exactly as a strong resolution would have: the
                // quorum value is the truth bit-for-bit, so scheme state,
                // prune counters and exports stay byte-identical (I10).
                // `preload_weak` bills `resolved` like a strong call but
                // lets provenance-aware inners attribute the resolution to
                // the weak-quorum ledger row.
                self.inner.preload_weak(p, value);
                if let Some(d) = self.degraded.as_mut() {
                    d.report.certified += 1;
                }
                return Ok(value);
            }
            // Proven lie: the quorum escaped its certified sandwich.
            self.note_weak(p, attempts, WeakOutcome::Lie);
            self.lies += 1;
            self.quarantined.insert(p.key());
        } else if let Some(WeakVote::NoQuorum { attempts, .. }) = vote {
            self.note_weak(p, attempts, WeakOutcome::NoQuorum);
            self.no_quorum += 1;
        }

        // Escalate to the strong tier while it is still alive.
        let lied = matches!(vote, Some(WeakVote::Quorum { .. }));
        if self.degraded.is_none() {
            match self.inner.resolve_fallible(p) {
                Ok(d) => return Ok(d),
                Err(e) if self.degrade && !e.is_retryable() => self.enter_degraded(&e),
                Err(e) => return Err(e),
            }
        }

        // Strong tier is gone: serve the best uncertified answer. A vote
        // that was a proven lie is treated like a quarantined pair.
        let vote = if lied { None } else { vote };
        Ok(self.degraded_value(p, vote))
    }

    fn try_less(&mut self, x: Pair, y: Pair) -> Option<bool> {
        self.inner.try_less(x, y)
    }

    fn try_less_value(&mut self, x: Pair, v: f64) -> Option<bool> {
        self.inner.try_less_value(x, v)
    }

    fn try_leq_value(&mut self, x: Pair, v: f64) -> Option<bool> {
        self.inner.try_leq_value(x, v)
    }

    fn try_less_sum2(&mut self, x: (Pair, Pair), y: (Pair, Pair)) -> Option<bool> {
        self.inner.try_less_sum2(x, y)
    }

    fn try_sum_less_value(&mut self, terms: &[Pair], v: f64) -> Option<bool> {
        // Forward explicitly: inner resolvers (e.g. DFT) may override the
        // provided default, and the cascade must not mask that.
        self.inner.try_sum_less_value(terms, v)
    }

    fn lower_bound_hint(&mut self, x: Pair) -> f64 {
        self.inner.lower_bound_hint(x)
    }

    fn bounds_hint(&mut self, x: Pair) -> (f64, f64) {
        self.inner.bounds_hint(x)
    }

    fn preload(&mut self, p: Pair, d: f64) {
        self.inner.preload(p, d);
    }

    fn preload_weak(&mut self, p: Pair, d: f64) {
        self.inner.preload_weak(p, d);
    }

    fn provenance(&self) -> ProvenanceLedger {
        let mut l = self.inner.provenance();
        let fresh = self
            .degraded
            .as_ref()
            .map(|d| d.report.weak_only + d.report.unresolved)
            .unwrap_or(0);
        l.add(
            ResolutionSource::DegradedMidpoint,
            fresh + self.fallback_hits,
        );
        l
    }

    fn export_known(&self, out: &mut Vec<(Pair, f64)>) {
        self.inner.export_known(out);
    }

    fn corruption_stats(&self) -> CorruptionStats {
        self.inner.corruption_stats()
    }

    fn weak_stats(&self) -> WeakStats {
        WeakStats {
            probes: self.weak.probes(),
            errors_injected: self.weak.errors_injected(),
            resolutions: self.resolutions,
            lies_detected: self.lies,
            no_quorum: self.no_quorum,
        }
    }

    fn degradation(&self) -> Option<Degradation> {
        self.degraded
    }

    fn prune_stats(&self) -> PruneStats {
        self.inner.prune_stats()
    }

    fn prune_stats_mut(&mut self) -> &mut PruneStats {
        self.inner.prune_stats_mut()
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn pair_stamp(&self, x: Pair) -> u64 {
        self.inner.pair_stamp(x)
    }

    fn spec(&self) -> Option<&dyn SpecBounds> {
        self.inner.spec()
    }

    fn trace_sink(&self) -> Option<Rc<dyn TraceSink>> {
        self.inner.trace_sink()
    }

    fn obs_metrics(&self) -> Option<Rc<Metrics>> {
        self.inner.obs_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundResolver, TriScheme};
    use prox_core::{CallBudget, FnMetric, ObjectId, Oracle};

    fn line_metric(n: usize) -> FnMetric<impl Fn(ObjectId, ObjectId) -> f64> {
        FnMetric::new(n, 1.0, |a, b| (f64::from(a) - f64::from(b)).abs() / 16.0)
    }

    fn resolve_all<R: DistanceResolver>(r: &mut R, n: usize) -> Vec<(Pair, u64)> {
        Pair::all(n).map(|p| (p, r.resolve(p).to_bits())).collect()
    }

    #[test]
    fn healthy_cascade_is_byte_identical_and_saves_strong_calls() {
        let n = 12;
        let metric = line_metric(n);

        let strong_only = Oracle::new(&metric);
        let mut base = BoundResolver::new(&strong_only, TriScheme::new(n, 1.0));
        let baseline = resolve_all(&mut base, n);
        let baseline_stats = base.prune_stats();
        let strong_only_calls = strong_only.calls();

        for rate in [0.0, 0.05, 0.3] {
            let oracle = Oracle::new(&metric);
            let weak = WeakOracle::new(&metric, rate, 42);
            let mut cascade =
                CascadeResolver::new(BoundResolver::new(&oracle, TriScheme::new(n, 1.0)), weak);
            let outputs = resolve_all(&mut cascade, n);
            assert_eq!(outputs, baseline, "rate {rate}");
            assert_eq!(cascade.prune_stats(), baseline_stats, "rate {rate}");
            let ws = cascade.weak_stats();
            // Billing identity: every weak resolution is a strong call
            // saved, nothing double-billed.
            assert_eq!(
                oracle.calls() + ws.resolutions,
                strong_only_calls,
                "rate {rate}"
            );
            assert!(oracle.calls() <= strong_only_calls);
            assert_eq!(ws.lies_detected, 0, "rate {rate}");
            assert!(cascade.degradation().is_none());
            // Exports match too.
            let (mut a, mut b) = (Vec::new(), Vec::new());
            cascade.export_known(&mut a);
            base.export_known(&mut b);
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn weak_lies_escaping_the_sandwich_are_quarantined() {
        // A weak tier wrapping a *different* metric is a permanent liar:
        // it reaches quorum instantly on values the certified sandwich
        // can disprove. d(0,1) = d(0,2) = 0.2 preloaded, so tri bounds
        // give (1,2) ⊆ [0, 0.4]; the weak tier claims 0.95.
        let metric = FnMetric::new(3, 1.0, |a, b| {
            if a == b {
                0.0
            } else if a.min(b) == 0 {
                0.2
            } else {
                0.3
            }
        });
        let liar = FnMetric::new(3, 1.0, |a, b| if a == b { 0.0 } else { 0.95 });
        let oracle = Oracle::new(&metric);
        let mut cascade = CascadeResolver::new(
            BoundResolver::new(&oracle, TriScheme::new(3, 1.0)),
            WeakOracle::new(&liar, 0.0, 7),
        );
        cascade.preload(Pair::new(0, 1), 0.2);
        cascade.preload(Pair::new(0, 2), 0.2);

        let p = Pair::new(1, 2);
        let d = cascade.resolve(p);
        assert_eq!(d.to_bits(), 0.3f64.to_bits());
        let ws = cascade.weak_stats();
        assert_eq!(ws.lies_detected, 1);
        assert_eq!(ws.resolutions, 0);
        assert_eq!(oracle.calls(), 1);
    }

    #[test]
    fn no_quorum_escalates_to_strong() {
        // rate 1.0: every attempt lies, and distinct attempts draw
        // distinct lies, so no quorum ever forms.
        let n = 8;
        let metric = line_metric(n);
        let oracle = Oracle::new(&metric);
        let mut cascade = CascadeResolver::new(
            BoundResolver::new(&oracle, TriScheme::new(n, 1.0)),
            WeakOracle::new(&metric, 1.0, 3),
        );
        let p = Pair::new(0, 7);
        let truth = metric.distance(0, 7);
        assert_eq!(cascade.resolve(p).to_bits(), truth.to_bits());
        let ws = cascade.weak_stats();
        assert_eq!(ws.no_quorum, 1);
        assert_eq!(ws.lies_detected, 0);
        assert_eq!(ws.resolutions, 0);
        assert_eq!(oracle.calls(), 1);
    }

    #[test]
    fn budget_exhaustion_degrades_instead_of_aborting() {
        let n = 10;
        let metric = line_metric(n);
        let run = |budget: u64| {
            let oracle = Oracle::new(&metric).with_budget(CallBudget::calls(budget));
            // rate 1.0 forces every fresh pair to the strong tier, so the
            // budget trips mid-run deterministically.
            let weak = WeakOracle::new(&metric, 1.0, 99);
            let mut cascade =
                CascadeResolver::new(BoundResolver::new(&oracle, TriScheme::new(n, 1.0)), weak)
                    .with_degrade(true);
            let outputs = resolve_all(&mut cascade, n);
            (outputs, cascade.degradation(), cascade.weak_stats())
        };
        let (outputs, degradation, _) = run(5);
        let d = degradation.expect("budget must have tripped");
        assert_eq!(d.reason, DegradeReason::BudgetExhausted);
        assert_eq!(d.report.strong_calls_at_loss, 5);
        assert!(d.report.decisions() > 0);
        assert_eq!(
            d.report.decisions(),
            Pair::count(n) - 5,
            "every post-loss fresh pair is classified"
        );
        // Deterministic given the seed and the exhaustion point.
        let (outputs2, degradation2, _) = run(5);
        assert_eq!(outputs, outputs2);
        assert_eq!(degradation, degradation2);
        // Repeated resolutions of a degraded pair are memo-stable.
        let oracle = Oracle::new(&metric).with_budget(CallBudget::calls(0));
        let mut cascade = CascadeResolver::new(
            BoundResolver::new(&oracle, TriScheme::new(n, 1.0)),
            WeakOracle::new(&metric, 1.0, 99),
        )
        .with_degrade(true);
        let p = Pair::new(2, 9);
        let a = cascade.resolve(p);
        let b = cascade.resolve(p);
        assert_eq!(a.to_bits(), b.to_bits());
        // Uncertified values never leak into exports or `known`.
        assert!(cascade.known(p).is_none());
        let mut out = Vec::new();
        cascade.export_known(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn degrade_off_still_surfaces_the_error() {
        let n = 6;
        let metric = line_metric(n);
        let oracle = Oracle::new(&metric).with_budget(CallBudget::calls(0));
        let mut cascade = CascadeResolver::new(
            BoundResolver::new(&oracle, TriScheme::new(n, 1.0)),
            WeakOracle::new(&metric, 1.0, 1),
        );
        let err = cascade.resolve_fallible(Pair::new(0, 1)).unwrap_err();
        assert!(matches!(err, OracleError::BudgetExhausted { .. }));
        assert!(cascade.degradation().is_none());
    }

    #[test]
    fn degraded_mode_still_certifies_weak_quorums() {
        // Budget 0 and a *perfect* weak tier: every pair resolves by
        // quorum and is classified certified; outputs equal the truth.
        let n = 9;
        let metric = line_metric(n);
        let oracle = Oracle::new(&metric).with_budget(CallBudget::calls(0));
        let mut cascade = CascadeResolver::new(
            BoundResolver::new(&oracle, TriScheme::new(n, 1.0)),
            WeakOracle::new(&metric, 0.0, 5),
        )
        .with_degrade(true);
        // Trip the degradation with one doomed pair… no: quorum serves it
        // without a strong call, so the budget never trips and the run
        // stays healthy. That is the point: a perfect weak tier makes a
        // zero-budget run indistinguishable from a healthy one.
        let outputs = resolve_all(&mut cascade, n);
        for (p, bits) in outputs {
            assert_eq!(bits, metric.distance(p.lo(), p.hi()).to_bits());
        }
        assert!(cascade.degradation().is_none());
        assert_eq!(oracle.calls(), 0);
        assert_eq!(cascade.weak_stats().resolutions, Pair::count(n));
    }
}
