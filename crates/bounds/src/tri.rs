//! Tri Scheme — triangle-induced bounds (§4.2 of the paper, Algorithm 2).

use prox_core::{Pair, SpecBounds, SpecScratch};
use prox_graph::PartialGraph;

use crate::BoundScheme;

/// The paper's practical plug-in: bound an unknown edge `(a, b)` using only
/// the *triangles* incident on it — objects `c` with both `d(a, c)` and
/// `d(b, c)` known:
///
/// ```text
/// LB = max over c of |d(a, c) − d(b, c)|
/// UB = min over c of  d(a, c) + d(b, c)       (capped at max_distance)
/// ```
///
/// A query is a single merge of the two sorted adjacency lists
/// (`O(deg a + deg b)`, expected `O(m / n)` under a uniform query model —
/// Theorem 4.2); an update is one sorted insertion per endpoint. The bounds
/// are looser than [`crate::Splub`]'s tightest bounds but empirically close,
/// and the CPU cost is lower by orders of magnitude — the trade the paper's
/// evaluation recommends for large workloads.
#[derive(Clone, Debug)]
pub struct TriScheme {
    graph: PartialGraph,
    max_distance: f64,
}

impl TriScheme {
    /// An empty Tri Scheme over `n` objects with distances in
    /// `[0, max_distance]`.
    pub fn new(n: usize, max_distance: f64) -> Self {
        TriScheme {
            graph: PartialGraph::new(n),
            max_distance,
        }
    }

    /// Read access to the underlying known-edge graph.
    pub fn graph(&self) -> &PartialGraph {
        &self.graph
    }

    /// The bound computation proper, shared verbatim by the live
    /// (`BoundScheme::bounds`) and snapshot (`SpecBounds::bounds`) paths so
    /// the two produce bitwise-identical values at the same generation.
    fn bounds_ro(&self, p: Pair) -> (f64, f64) {
        if let Some(d) = self.graph.get(p) {
            return (d, d);
        }
        let (a, b) = p.ends();
        let mut lb = 0.0f64;
        let mut ub = self.max_distance;
        self.graph.for_each_common_neighbor(a, b, |_, da, db| {
            lb = lb.max((da - db).abs());
            ub = ub.min(da + db);
        });
        // Floating-point noise can cross the bounds when |d(a,c) − d(b,c)|
        // and d(a,c') + d(b,c') are nearly equal; keep the invariant lb ≤ ub.
        if lb > ub {
            lb = ub;
        }
        (lb, ub)
    }
}

impl BoundScheme for TriScheme {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn max_distance(&self) -> f64 {
        self.max_distance
    }

    fn known(&self, p: Pair) -> Option<f64> {
        self.graph.get(p)
    }

    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        self.bounds_ro(p)
    }

    fn record(&mut self, p: Pair, d: f64) {
        self.graph.insert(p, d);
    }

    fn retract(&mut self, p: Pair) -> bool {
        // Tri bounds are recomputed from adjacency on every query, so
        // removing the edge (which stamps both endpoints) fully repairs the
        // derivable state — no closure to unwind.
        self.graph.remove(p).is_some()
    }

    fn m(&self) -> usize {
        self.graph.m()
    }

    fn name(&self) -> &'static str {
        "Tri"
    }

    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        for &(p, d) in self.graph.edges() {
            f(p, d);
        }
    }

    fn generation(&self) -> u64 {
        self.graph.generation()
    }

    fn pair_stamp(&self, p: Pair) -> u64 {
        // Tri bounds for (a, b) are a function of adj(a) and adj(b) alone,
        // so the freshest incident insertion bounds the last change.
        self.graph.pair_stamp(p)
    }

    fn spec(&self) -> Option<&dyn SpecBounds> {
        Some(self)
    }

    fn bounds_cacheable(&self) -> bool {
        true
    }
}

impl SpecBounds for TriScheme {
    fn spec_n(&self) -> usize {
        self.graph.n()
    }

    fn spec_max_distance(&self) -> f64 {
        self.max_distance
    }

    fn spec_generation(&self) -> u64 {
        self.graph.generation()
    }

    fn spec_pair_stamp(&self, p: Pair) -> u64 {
        self.graph.pair_stamp(p)
    }

    fn spec_known(&self, p: Pair) -> Option<f64> {
        self.graph.get(p)
    }

    fn spec_bounds(&self, p: Pair, _scratch: &mut SpecScratch) -> (f64, f64) {
        self.bounds_ro(p)
    }

    fn spec_label(&self) -> &'static str {
        // Must match `BoundScheme::name` for trace byte-identity (I8).
        "Tri"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    /// The single-triangle bound from the paper's Example 2.1:
    /// `d(1,3) = 0.8`, `d(3,4) = 0.1` ⇒ `0.7 ≤ d(1,4) ≤ 0.9`.
    #[test]
    fn paper_example_single_triangle() {
        let mut s = TriScheme::new(7, 1.0);
        s.record(p(1, 3), 0.8);
        s.record(p(3, 4), 0.1);
        let (lb, ub) = s.bounds(p(1, 4));
        assert!((lb - 0.7).abs() < 1e-12);
        assert!((ub - 0.9).abs() < 1e-12, "ub {ub}");
    }

    #[test]
    fn no_triangle_gives_trivial_bounds() {
        let mut s = TriScheme::new(5, 1.0);
        s.record(p(0, 1), 0.5);
        // (2,3) shares no neighbour with anything.
        assert_eq!(s.bounds(p(2, 3)), (0.0, 1.0));
        // (0,2): 0 knows 1 but 2 knows nothing.
        assert_eq!(s.bounds(p(0, 2)), (0.0, 1.0));
    }

    #[test]
    fn multiple_triangles_take_best() {
        let mut s = TriScheme::new(4, 1.0);
        // Common neighbours of (0,1): 2 and 3.
        s.record(p(0, 2), 0.9);
        s.record(p(1, 2), 0.2); // lb 0.7, ub 1.0(capped 1.1)
        s.record(p(0, 3), 0.4);
        s.record(p(1, 3), 0.35); // lb 0.05, ub 0.75
        let (lb, ub) = s.bounds(p(0, 1));
        assert!((lb - 0.7).abs() < 1e-12, "max of lower bounds, got {lb}");
        assert!((ub - 0.75).abs() < 1e-12, "min of upper bounds, got {ub}");
    }

    #[test]
    fn known_edge_collapses_bounds() {
        let mut s = TriScheme::new(3, 1.0);
        s.record(p(0, 1), 0.33);
        assert_eq!(s.bounds(p(0, 1)), (0.33, 0.33));
        assert_eq!(s.known(p(1, 0)), Some(0.33));
        assert_eq!(s.m(), 1);
    }

    #[test]
    fn retract_reopens_bounds_derived_through_the_edge() {
        let mut s = TriScheme::new(7, 1.0);
        s.record(p(1, 3), 0.8);
        s.record(p(3, 4), 0.1);
        assert_ne!(s.bounds(p(1, 4)), (0.0, 1.0), "triangle bound active");
        assert!(s.retract(p(1, 3)));
        assert_eq!(s.known(p(1, 3)), None);
        assert_eq!(s.bounds(p(1, 4)), (0.0, 1.0), "triangle gone");
        assert!(!s.retract(p(1, 3)), "second retract refuses");
        // Repaired value re-records cleanly.
        s.record(p(1, 3), 0.75);
        let (lb, ub) = s.bounds(p(1, 4));
        assert!((lb - 0.65).abs() < 1e-12 && (ub - 0.85).abs() < 1e-12);
    }

    #[test]
    fn ub_capped_at_max_distance() {
        let mut s = TriScheme::new(3, 1.0);
        s.record(p(0, 2), 0.8);
        s.record(p(1, 2), 0.7);
        let (lb, ub) = s.bounds(p(0, 1));
        assert!((lb - 0.1).abs() < 1e-12, "lb {lb}");
        assert_eq!(ub, 1.0, "1.5 capped to max_distance");
    }
}
