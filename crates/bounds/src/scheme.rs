//! The `BoundScheme` abstraction (the paper's BOUNDS + UPDATE problems).

use std::collections::BTreeMap;

pub use prox_core::QueryGoal;
use prox_core::{Pair, SpecBounds};

/// Which cascade tier certified a goal-decisive answer (see
/// [`BoundScheme::bounds_for_goal`] and DESIGN.md §13). Surfaced so the
/// resolver can account per-tier hit metrics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CascadeTier {
    /// The approximate-distance-oracle prescreen decided the comparison.
    Ado,
    /// The bounded bidirectional search decided it.
    Bidi,
}

/// Result of a goal-aware bound query.
///
/// `Exact` is the full sandwich, safe to cache and to serve for any later
/// comparison. `Decisive` is a *relaxed* sandwich that nevertheless
/// decides the comparison in [`QueryGoal::decisive_at`] with the same
/// verdict the exact sandwich would give — valid only for that one
/// comparison and never cacheable as exact bounds.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum GoalBounds {
    /// A relaxed sandwich that decides the goal comparison; `tier` says
    /// which shortcut produced it.
    Decisive {
        /// Relaxed lower bound (`lb ≤ exact lb`).
        lb: f64,
        /// Relaxed upper bound (`ub ≥ exact ub`).
        ub: f64,
        /// The tier that certified decisiveness.
        tier: CascadeTier,
    },
    /// The exact sandwich, as [`BoundScheme::bounds`] would return.
    Exact {
        /// Exact lower bound.
        lb: f64,
        /// Exact upper bound.
        ub: f64,
    },
}

impl GoalBounds {
    /// The `(lb, ub)` payload regardless of variant.
    #[inline]
    pub fn bounds(self) -> (f64, f64) {
        match self {
            GoalBounds::Decisive { lb, ub, .. } | GoalBounds::Exact { lb, ub } => (lb, ub),
        }
    }
}

/// A data structure that answers the paper's two problems:
///
/// * **Bounds problem** (Problem 1): for an unknown edge `(a, b)`, produce a
///   lower and an upper bound on `dist(a, b)` consistent with the triangle
///   inequality and everything resolved so far.
/// * **Update problem** (Problem 2): absorb a newly resolved distance so
///   later bound queries benefit from it.
///
/// # Contract
///
/// For every implementation, at all times:
///
/// * `0 ≤ lb ≤ dist(a, b) ≤ ub ≤ max_distance()` — bounds are *sound*.
/// * After `record(p, d)`, `bounds(p) == (d, d)` and `known(p) == Some(d)`.
/// * `record` is idempotent for a fixed pair/distance.
///
/// Bound queries take `&mut self` because several schemes reuse scratch
/// buffers (SPLUB's Dijkstra state); they are still logically read-only.
pub trait BoundScheme {
    /// Number of objects in the space.
    fn n(&self) -> usize;

    /// The a-priori distance cap (the paper's `1`).
    fn max_distance(&self) -> f64;

    /// Exact distance for `p` if it has been recorded.
    #[must_use]
    fn known(&self, p: Pair) -> Option<f64>;

    /// `(lower, upper)` bounds for `p`; `(d, d)` when known.
    #[must_use]
    fn bounds(&mut self, p: Pair) -> (f64, f64);

    /// Lower bound only.
    fn lower_bound(&mut self, p: Pair) -> f64 {
        self.bounds(p).0
    }

    /// Upper bound only.
    fn upper_bound(&mut self, p: Pair) -> f64 {
        self.bounds(p).1
    }

    /// Absorbs a resolved distance (the UPDATE problem).
    fn record(&mut self, p: Pair, d: f64);

    /// Withdraws a previously recorded distance, returning `true` on
    /// success. This is the inverse UPDATE needed by the untrusted-oracle
    /// audit path: when a recorded value is *proven* corrupt (it violates a
    /// certified triangle-inequality sandwich), every bound derivable
    /// through it is poisoned and the value must be removed before a
    /// trusted replacement is recorded. After `retract(p)`, `known(p)`
    /// is `None` and `generation()` has advanced, so stamp-gated caches
    /// drop anything derived from the poisoned state.
    ///
    /// The default, `false`, declares the scheme *irreversible* — schemes
    /// whose internal state cannot soundly forget a value (ADM's matrix
    /// closure, LAESA's pivot rows baked in at bootstrap) must refuse, and
    /// callers fall back to always-vote mode, which never records an
    /// unaudited value in the first place.
    fn retract(&mut self, p: Pair) -> bool {
        let _ = p;
        false
    }

    /// Number of distances recorded so far.
    #[must_use]
    fn m(&self) -> usize;

    /// Scheme name for reports ("Tri", "SPLUB", …).
    fn name(&self) -> &'static str;

    /// Visits every pair whose exact distance the scheme can certify —
    /// the payload of a resolved-distance cache (see `prox_core::persist`).
    /// Schemes may legitimately report *more* pairs than were recorded
    /// (ADM's matrices can collapse a pair's bounds by inference; an
    /// inferred exact value is still the true distance).
    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64));

    /// Monotone generation counter: advances (at least) whenever a `record`
    /// may have changed some pair's derivable bounds. The default — the
    /// number of recorded distances — is correct for every scheme, since
    /// `record` is the only mutation.
    fn generation(&self) -> u64 {
        self.m() as u64
    }

    /// Upper bound on the last generation at which `bounds(p)` may have
    /// changed. The default (the current generation: "maybe just now") is
    /// maximally conservative and therefore always sound; schemes with
    /// localized bounds (Tri's are a function of the endpoints' adjacency
    /// alone) override it with a sharper stamp.
    fn pair_stamp(&self, p: Pair) -> u64 {
        let _ = p;
        self.generation()
    }

    /// A read-only, thread-shareable snapshot view for speculative bound
    /// evaluation (see `prox_core::spec`), when the scheme supports one.
    /// Schemes returning `None` simply keep all consumers sequential.
    fn spec(&self) -> Option<&dyn SpecBounds> {
        None
    }

    /// True when `bounds` is expensive enough that the resolver should
    /// memoize `(lb, ub)` per pair, invalidated via
    /// [`BoundScheme::pair_stamp`]. Schemes with O(1)-ish queries (ADM's
    /// matrix lookup, LAESA's pivot rows) leave this off — the cache probe
    /// would cost more than the query.
    fn bounds_cacheable(&self) -> bool {
        false
    }

    /// True when [`BoundScheme::bounds_for_goal`] can do better than the
    /// exact sandwich for threshold probes. Lets the resolver skip goal
    /// construction entirely for the (majority of) schemes whose queries
    /// are already cheap.
    fn goal_aware(&self) -> bool {
        false
    }

    /// Goal-aware bound query (the SPLUB cascade's entry point).
    ///
    /// # Contract
    ///
    /// When this returns [`GoalBounds::Decisive`] for a goal with
    /// `decisive_at = Some(v)`, deciding the comparison from the relaxed
    /// sandwich **must** yield the same verdict as deciding it from the
    /// exact `bounds(p)` — for both the strict (`d < v`) and non-strict
    /// (`d ≤ v`) probe, under the resolver's `DECISION_EPS` margins. The
    /// relaxation satisfies `lb ≤ exact_lb` and `ub ≥ exact_ub` up to
    /// float rounding, and decisive verdicts are only claimed outside a
    /// `CASCADE_EPS` guard band that absorbs that rounding (DESIGN.md
    /// §13 has the argument). Decisive results must never be cached or
    /// served as exact bounds.
    ///
    /// The default computes the exact sandwich, which trivially satisfies
    /// the contract.
    fn bounds_for_goal(&mut self, p: Pair, goal: QueryGoal) -> GoalBounds {
        let _ = goal;
        let (lb, ub) = self.bounds(p);
        GoalBounds::Exact { lb, ub }
    }
}

/// The null scheme: remembers exact values but derives nothing.
///
/// Plugging `NoScheme` into a resolver yields the vanilla algorithm — every
/// comparison falls through to the oracle (memoized per pair). This is the
/// `Without Plug` column of the paper's tables.
#[derive(Clone, Debug, Default)]
pub struct NoScheme {
    n: usize,
    max_distance: f64,
    resolved: BTreeMap<u64, f64>,
    retractions: u64,
}

impl NoScheme {
    /// A null scheme over `n` objects with distances in `[0, max_distance]`.
    pub fn new(n: usize, max_distance: f64) -> Self {
        NoScheme {
            n,
            max_distance,
            resolved: BTreeMap::new(),
            retractions: 0,
        }
    }
}

impl BoundScheme for NoScheme {
    fn n(&self) -> usize {
        self.n
    }
    fn max_distance(&self) -> f64 {
        self.max_distance
    }
    fn known(&self, p: Pair) -> Option<f64> {
        self.resolved.get(&p.key()).copied()
    }
    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        match self.known(p) {
            Some(d) => (d, d),
            None => (0.0, self.max_distance),
        }
    }
    fn record(&mut self, p: Pair, d: f64) {
        self.resolved.insert(p.key(), d);
    }
    fn retract(&mut self, p: Pair) -> bool {
        if self.resolved.remove(&p.key()).is_some() {
            self.retractions += 1;
            true
        } else {
            false
        }
    }
    fn m(&self) -> usize {
        self.resolved.len()
    }
    fn name(&self) -> &'static str {
        "NoScheme"
    }
    fn generation(&self) -> u64 {
        // `m()` alone would *decrease* across a retraction; counting each
        // retraction twice (one removal + the slot it vacated) keeps the
        // counter monotone through retract-then-re-record cycles.
        self.resolved.len() as u64 + 2 * self.retractions
    }
    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        for (&key, &d) in &self.resolved {
            f(Pair::from_key(key), d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noscheme_trivial_bounds() {
        let mut s = NoScheme::new(4, 1.0);
        let p = Pair::new(0, 1);
        assert_eq!(s.bounds(p), (0.0, 1.0));
        assert_eq!(s.known(p), None);
        s.record(p, 0.4);
        assert_eq!(s.bounds(p), (0.4, 0.4));
        assert_eq!(s.known(p), Some(0.4));
        assert_eq!(s.m(), 1);
        assert_eq!(s.bounds(Pair::new(2, 3)), (0.0, 1.0));
    }

    #[test]
    fn noscheme_retract_forgets_and_stays_monotone() {
        let mut s = NoScheme::new(4, 1.0);
        let p = Pair::new(0, 1);
        s.record(p, 0.4);
        let gen = s.generation();
        assert!(s.retract(p));
        assert_eq!(s.known(p), None);
        assert_eq!(s.bounds(p), (0.0, 1.0));
        assert!(s.generation() > gen, "retraction advances the generation");
        let gen = s.generation();
        s.record(p, 0.35);
        assert_eq!(s.known(p), Some(0.35));
        assert!(s.generation() > gen);
        assert!(!s.retract(Pair::new(2, 3)), "unknown pair refuses");
    }

    #[test]
    fn noscheme_respects_max_distance() {
        let mut s = NoScheme::new(3, 7.5);
        assert_eq!(s.bounds(Pair::new(0, 2)), (0.0, 7.5));
        assert_eq!(s.upper_bound(Pair::new(1, 2)), 7.5);
        assert_eq!(s.lower_bound(Pair::new(1, 2)), 0.0);
    }
}
