//! Combining two bound schemes: take the best of both worlds.

use prox_core::Pair;

use crate::scheme::{GoalBounds, QueryGoal};
use crate::BoundScheme;

/// A scheme that answers with the **tighter** of two member schemes'
/// bounds: `lb = max(lb_a, lb_b)`, `ub = min(ua, ub_b)`.
///
/// Every recorded distance goes to both members, so a
/// `Composite<Laesa, TriScheme>` pairs LAESA's strong *static* landmark
/// bounds with Tri's *growing* knowledge — the idea behind the paper's
/// "bootstrapping Tri Scheme through landmarks", expressed as a combinator
/// instead of by seeding one scheme's graph. Bounds are at least as tight
/// as either member's, at the summed query/update cost.
#[derive(Clone, Debug)]
pub struct Composite<A, B> {
    /// First member.
    pub a: A,
    /// Second member.
    pub b: B,
}

impl<A: BoundScheme, B: BoundScheme> Composite<A, B> {
    /// Combines two schemes over the same object set.
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(a.n(), b.n(), "members must cover the same objects");
        assert_eq!(
            a.max_distance(),
            b.max_distance(),
            "members must share the distance cap"
        );
        Composite { a, b }
    }
}

impl<A: BoundScheme, B: BoundScheme> BoundScheme for Composite<A, B> {
    fn n(&self) -> usize {
        self.a.n()
    }

    fn max_distance(&self) -> f64 {
        self.a.max_distance()
    }

    fn known(&self, p: Pair) -> Option<f64> {
        self.a.known(p).or_else(|| self.b.known(p))
    }

    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        let (la, ua) = self.a.bounds(p);
        let (lb, ub) = self.b.bounds(p);
        let l = la.max(lb);
        let u = ua.min(ub);
        // Members can disagree by float noise around an exact value.
        if l > u {
            (u, u)
        } else {
            (l, u)
        }
    }

    fn record(&mut self, p: Pair, d: f64) {
        self.a.record(p, d);
        self.b.record(p, d);
    }

    fn m(&self) -> usize {
        self.a.m().max(self.b.m())
    }

    fn name(&self) -> &'static str {
        "Composite"
    }

    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        // Every record() reaches both members; member `a` is authoritative.
        self.a.for_each_known(f);
    }

    fn goal_aware(&self) -> bool {
        self.a.goal_aware() || self.b.goal_aware()
    }

    fn bounds_for_goal(&mut self, p: Pair, goal: QueryGoal) -> GoalBounds {
        // A member's decisive shortcut transfers to the composite: the
        // combined exact sandwich is at least as tight as that member's, so
        // a comparison the member's exact tier decides (which its Decisive
        // certifies, guard band included) the intersection decides the same
        // way — tightening can only move bounds *away* from the threshold
        // on the decided side.
        let ga = self.a.bounds_for_goal(p, goal);
        if matches!(ga, GoalBounds::Decisive { .. }) {
            return ga;
        }
        let gb = self.b.bounds_for_goal(p, goal);
        if matches!(gb, GoalBounds::Decisive { .. }) {
            return gb;
        }
        // Both exact: combine exactly as `bounds` does.
        let (la, ua) = ga.bounds();
        let (lb, ub) = gb.bounds();
        let l = la.max(lb);
        let u = ua.min(ub);
        if l > u {
            GoalBounds::Exact { lb: u, ub: u }
        } else {
            GoalBounds::Exact { lb: l, ub: u }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{laesa_bootstrap, Laesa, Splub, TriScheme};
    use prox_core::{FnMetric, Metric, ObjectId, Oracle};

    fn line_oracle(n: usize) -> Oracle<FnMetric<impl Fn(ObjectId, ObjectId) -> f64>> {
        let scale = 1.0 / (n as f64 - 1.0);
        Oracle::new(FnMetric::new(n, 1.0, move |a, b| {
            (f64::from(a) - f64::from(b)).abs() * scale
        }))
    }

    #[test]
    fn tighter_than_both_members() {
        let n = 40;
        let oracle = line_oracle(n);
        let boot = laesa_bootstrap(&oracle, 3, 5);

        let mut laesa_alone = Laesa::new(1.0, &boot);
        let mut tri_alone = TriScheme::new(n, 1.0);
        let mut combo = Composite::new(Laesa::new(1.0, &boot), TriScheme::new(n, 1.0));

        // Feed some run-time resolutions (Tri absorbs, LAESA memoizes).
        for e in Pair::all(n).step_by(11) {
            let d = oracle.ground_truth().distance(e.lo(), e.hi());
            laesa_alone.record(e, d);
            tri_alone.record(e, d);
            combo.record(e, d);
        }
        for q in Pair::all(n).step_by(3) {
            let (cl, cu) = combo.bounds(q);
            let (ll, lu) = laesa_alone.bounds(q);
            let (tl, tu) = tri_alone.bounds(q);
            let d = oracle.ground_truth().distance(q.lo(), q.hi());
            assert!(cl >= ll.max(tl) - 1e-12, "{q:?} lb");
            assert!(cu <= lu.min(tu) + 1e-12, "{q:?} ub");
            assert!(cl <= d + 1e-12 && d <= cu + 1e-12, "{q:?} sound");
        }
    }

    #[test]
    fn known_served_from_either_member() {
        let mut combo = Composite::new(TriScheme::new(5, 1.0), Splub::new(5, 1.0));
        combo.record(Pair::new(0, 1), 0.25);
        assert_eq!(combo.known(Pair::new(0, 1)), Some(0.25));
        assert_eq!(combo.bounds(Pair::new(0, 1)), (0.25, 0.25));
        assert_eq!(combo.m(), 1);
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn mismatched_sizes_rejected() {
        let _ = Composite::new(TriScheme::new(5, 1.0), Splub::new(6, 1.0));
    }
}
