//! SPLUB — Shortest-Path based Lower and Upper Bounds (§4.1, Algorithm 1).

use prox_core::invariant::InvariantExt;
use prox_core::{ObjectId, Pair, SpecBounds, SpecScratch};
use prox_graph::{Dijkstra, PartialGraph};

use crate::BoundScheme;

/// The paper's exact, sparsity-sensitive bound algorithm.
///
/// For an unknown edge `(a, b)`:
///
/// * `TUB(a, b)` — the tightest upper bound — is the shortest-path distance
///   between `a` and `b` through known edges (Definition 1).
/// * `TLB(a, b)` — the tightest lower bound — is, over every known edge
///   `(k, l)` with weight `w`, the best "wrap" residue
///   `w − sp(a, k) − sp(b, l)` (and the symmetric assignment), maximized
///   (Definition 2 / Equation 3).
///
/// Both come out of **two** Dijkstra runs (one per endpoint) plus one pass
/// over the known edge list: `O(m + n log n)` per query, `O(1)` per update.
/// Lemma 4.1 proves these bounds are the tightest derivable from the
/// triangle inequality on paths, i.e. identical to what the `O(n²)`-update
/// ADM baseline maintains — a property the cross-scheme test-suite checks on
/// random instances.
pub struct Splub {
    graph: PartialGraph,
    max_distance: f64,
    dij_a: Dijkstra,
    dij_b: Dijkstra,
    /// `(source, graph generation)` of the tree each scratch currently
    /// holds. Consecutive queries sharing an endpoint (kNN sweeps probe
    /// `(u, v)` for a fixed `u`) then pay one Dijkstra, not two.
    src_a: Option<(ObjectId, u64)>,
    src_b: Option<(ObjectId, u64)>,
}

/// Per-worker scratch for speculative SPLUB bound queries: the same
/// two-slot source-tagged Dijkstra cache, minus the generation tag (the
/// snapshot graph is frozen while the view is borrowed).
struct SplubScratch {
    dij_a: Dijkstra,
    dij_b: Dijkstra,
    src_a: Option<ObjectId>,
    src_b: Option<ObjectId>,
}

impl Splub {
    /// An empty SPLUB scheme over `n` objects with distances in
    /// `[0, max_distance]`.
    pub fn new(n: usize, max_distance: f64) -> Self {
        Splub {
            graph: PartialGraph::new(n),
            max_distance,
            dij_a: Dijkstra::new(n),
            dij_b: Dijkstra::new(n),
            src_a: None,
            src_b: None,
        }
    }

    /// Read access to the underlying known-edge graph.
    pub fn graph(&self) -> &PartialGraph {
        &self.graph
    }
}

/// TUB/TLB from two settled shortest-path trees (Equations 2 and 3).
/// Shared verbatim by the live and snapshot paths so both produce
/// bitwise-identical bounds from identical trees.
fn wrap_bounds(
    graph: &PartialGraph,
    max_distance: f64,
    b: ObjectId,
    sp_a: &[f64],
    sp_b: &[f64],
) -> (f64, f64) {
    // TUB: shortest path a -> b (Equation 2), capped by the a-priori max.
    let ub = max_distance.min(sp_a[b as usize]);

    // TLB: wrap both shortest-path trees onto every known edge
    // (Equation 3). Unreachable endpoints contribute -inf and drop out.
    let mut lb = 0.0f64;
    for &(e, w) in graph.edges() {
        let (k, l) = (e.lo() as usize, e.hi() as usize);
        let via = w - (sp_a[k] + sp_b[l]);
        let via_sym = w - (sp_a[l] + sp_b[k]);
        let best = via.max(via_sym);
        if best > lb {
            lb = best;
        }
    }
    if lb > ub {
        lb = ub; // float-noise guard; mathematically lb <= ub
    }
    (lb, ub)
}

impl BoundScheme for Splub {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn max_distance(&self) -> f64 {
        self.max_distance
    }

    fn known(&self, p: Pair) -> Option<f64> {
        self.graph.get(p)
    }

    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        if let Some(d) = self.graph.get(p) {
            return (d, d);
        }
        let (a, b) = p.ends();
        // Re-run Dijkstra only when the cached tree is for another source
        // or the graph has grown since (Dijkstra is deterministic, so a
        // cached tree is bitwise what a re-run would produce).
        let gen = self.graph.generation();
        if self.src_a != Some((a, gen)) {
            self.dij_a.run(&self.graph, a);
            self.src_a = Some((a, gen));
        }
        if self.src_b != Some((b, gen)) {
            self.dij_b.run(&self.graph, b);
            self.src_b = Some((b, gen));
        }
        wrap_bounds(
            &self.graph,
            self.max_distance,
            b,
            self.dij_a.dist(),
            self.dij_b.dist(),
        )
    }

    fn record(&mut self, p: Pair, d: f64) {
        self.graph.insert(p, d);
    }

    fn retract(&mut self, p: Pair) -> bool {
        // Removal bumps the graph generation, so the `(source, generation)`
        // tags on both cached Dijkstra trees miss and the next query
        // recomputes shortest paths without the poisoned edge.
        self.graph.remove(p).is_some()
    }

    fn m(&self) -> usize {
        self.graph.m()
    }

    fn name(&self) -> &'static str {
        "SPLUB"
    }

    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        for &(p, d) in self.graph.edges() {
            f(p, d);
        }
    }

    fn generation(&self) -> u64 {
        self.graph.generation()
    }

    // SPLUB bounds depend on the whole graph (any new edge can shorten a
    // path or improve a wrap), so the conservative default pair stamp — the
    // current generation — is also the sharp one; no override.

    fn spec(&self) -> Option<&dyn SpecBounds> {
        Some(self)
    }

    fn bounds_cacheable(&self) -> bool {
        true
    }
}

impl SpecBounds for Splub {
    fn spec_n(&self) -> usize {
        self.graph.n()
    }

    fn spec_max_distance(&self) -> f64 {
        self.max_distance
    }

    fn spec_generation(&self) -> u64 {
        self.graph.generation()
    }

    fn spec_pair_stamp(&self, _p: Pair) -> u64 {
        self.graph.generation()
    }

    fn spec_known(&self, p: Pair) -> Option<f64> {
        self.graph.get(p)
    }

    fn new_scratch(&self) -> SpecScratch {
        SpecScratch::with(SplubScratch {
            dij_a: Dijkstra::new(self.graph.n()),
            dij_b: Dijkstra::new(self.graph.n()),
            src_a: None,
            src_b: None,
        })
    }

    fn spec_bounds(&self, p: Pair, scratch: &mut SpecScratch) -> (f64, f64) {
        if let Some(d) = self.graph.get(p) {
            return (d, d);
        }
        if scratch.get_mut::<SplubScratch>().is_none() {
            *scratch = self.new_scratch();
        }
        let s = scratch
            .get_mut::<SplubScratch>()
            .expect_invariant("scratch installed above");
        let (a, b) = p.ends();
        if s.src_a != Some(a) {
            s.dij_a.run(&self.graph, a);
            s.src_a = Some(a);
        }
        if s.src_b != Some(b) {
            s.dij_b.run(&self.graph, b);
            s.src_b = Some(b);
        }
        wrap_bounds(
            &self.graph,
            self.max_distance,
            b,
            s.dij_a.dist(),
            s.dij_b.dist(),
        )
    }

    fn spec_label(&self) -> &'static str {
        // Must match `BoundScheme::name` for trace byte-identity (I8).
        "SPLUB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn single_triangle_matches_tri_scheme() {
        // Same fixture as the paper's Example 2.1 discussion.
        let mut s = Splub::new(7, 1.0);
        s.record(p(1, 3), 0.8);
        s.record(p(3, 4), 0.1);
        let (lb, ub) = s.bounds(p(1, 4));
        assert!((lb - 0.7).abs() < 1e-12);
        assert!((ub - 0.9).abs() < 1e-12);
    }

    #[test]
    fn longer_paths_tighten_ub() {
        // Chain 0 -0.2- 1 -0.2- 2 -0.2- 3: ub(0,3) = 0.6 (no triangle exists,
        // so Tri Scheme would say 1.0 — SPLUB sees the full path).
        let mut s = Splub::new(4, 1.0);
        s.record(p(0, 1), 0.2);
        s.record(p(1, 2), 0.2);
        s.record(p(2, 3), 0.2);
        let (lb, ub) = s.bounds(p(0, 3));
        assert!((ub - 0.6).abs() < 1e-12, "ub {ub}");
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn wrap_lower_bound_through_path() {
        // Long edge (2,3)=0.9; sp(0,2)=0.1 via direct, sp(1,3)=0.1.
        // lb(0,1) >= 0.9 - 0.1 - 0.1 = 0.7. Tri Scheme sees no triangle on
        // (0,1) and would return 0 — the paper's motivating gap.
        let mut s = Splub::new(4, 1.0);
        s.record(p(0, 2), 0.1);
        s.record(p(2, 3), 0.9);
        s.record(p(1, 3), 0.1);
        let (lb, ub) = s.bounds(p(0, 1));
        assert!((lb - 0.7).abs() < 1e-12, "lb {lb}");
        assert!((ub - 1.0).abs() < 1e-12, "path ub = 1.1 capped, got {ub}");
    }

    #[test]
    fn disconnected_endpoints_trivial_bounds() {
        let mut s = Splub::new(5, 1.0);
        s.record(p(0, 1), 0.4);
        assert_eq!(s.bounds(p(3, 4)), (0.0, 1.0));
    }

    #[test]
    fn known_edge_is_exact() {
        let mut s = Splub::new(3, 1.0);
        s.record(p(0, 2), 0.6);
        assert_eq!(s.bounds(p(0, 2)), (0.6, 0.6));
        assert_eq!(s.m(), 1);
    }

    #[test]
    fn retract_invalidates_cached_shortest_paths() {
        // Chain 0 -0.2- 1 -0.2- 2 -0.2- 3 gives ub(0,3)=0.6; the same query
        // again after retracting the middle edge must not reuse the stale
        // Dijkstra trees (they are keyed by graph generation).
        let mut s = Splub::new(4, 1.0);
        s.record(p(0, 1), 0.2);
        s.record(p(1, 2), 0.2);
        s.record(p(2, 3), 0.2);
        assert!((s.bounds(p(0, 3)).1 - 0.6).abs() < 1e-12);
        assert!(s.retract(p(1, 2)));
        assert_eq!(s.known(p(1, 2)), None);
        assert_eq!(s.bounds(p(0, 3)), (0.0, 1.0), "path broken, trees rebuilt");
        // Repair with a different value; the new path is used.
        s.record(p(1, 2), 0.1);
        assert!((s.bounds(p(0, 3)).1 - 0.5).abs() < 1e-12);
        assert!(!s.retract(p(0, 3)), "never-recorded pair refuses");
    }

    #[test]
    fn lb_never_negative() {
        let mut s = Splub::new(3, 1.0);
        s.record(p(0, 1), 0.1);
        s.record(p(1, 2), 0.5);
        // Wrap residues are negative here; lb must clamp at 0.
        let (lb, _) = s.bounds(p(0, 2));
        assert!(lb >= 0.0);
        assert!((lb - 0.4).abs() < 1e-12, "|0.5-0.1| via wrap, got {lb}");
    }
}
