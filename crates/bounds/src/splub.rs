//! SPLUB — Shortest-Path based Lower and Upper Bounds (§4.1, Algorithm 1),
//! served through a three-tier query cascade (DESIGN.md §13).

use std::collections::BTreeMap;

use prox_core::invariant::InvariantExt;
use prox_core::{ObjectId, Pair, SpecBounds, SpecScratch};
use prox_graph::{Ado, Dijkstra, DistMap, PartialGraph};

use crate::resolver::CASCADE_EPS;
use crate::scheme::{CascadeTier, GoalBounds, QueryGoal};
use crate::BoundScheme;

/// Seed for the deterministic ADO landmark draw. Fixed so two SPLUB
/// instances over the same record sequence build bitwise-identical
/// sketches (I5: thread-count must not perturb anything observable).
const ADO_SEED: u64 = 0x05EE_DAD0;

/// `(source, generation, edge count)` of the shortest-path tree a Dijkstra
/// scratch currently holds. The generation/edge-count pair is what makes
/// *incremental repair* safe: when the graph has only grown since the tree
/// was settled (no retraction in between), the appended suffix
/// `edges()[m..]` is exactly the set of new edges, and a decrease-only
/// Ramalingam–Reps repair from their endpoints reproduces the from-scratch
/// tree bitwise (see `Dijkstra::repair`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct TreeTag {
    src: ObjectId,
    gen: u64,
    m: usize,
}

/// The paper's exact, sparsity-sensitive bound algorithm.
///
/// For an unknown edge `(a, b)`:
///
/// * `TUB(a, b)` — the tightest upper bound — is the shortest-path distance
///   between `a` and `b` through known edges (Definition 1).
/// * `TLB(a, b)` — the tightest lower bound — is, over every known edge
///   `(k, l)` with weight `w`, the best "wrap" residue
///   `w − sp(a, k) − sp(b, l)` (and the symmetric assignment), maximized
///   (Definition 2 / Equation 3).
///
/// Both come out of **two** Dijkstra runs (one per endpoint) plus one pass
/// over the known edge list: `O(m + n log n)` per query, `O(1)` per update.
/// Lemma 4.1 proves these bounds are the tightest derivable from the
/// triangle inequality on paths, i.e. identical to what the `O(n²)`-update
/// ADM baseline maintains — a property the cross-scheme test-suite checks on
/// random instances.
///
/// # The query cascade
///
/// The exact tier is expensive, so queries route through cheaper tiers
/// first (each may only *shortcut* the exact answer, never change it):
///
/// 1. **Per-generation memo** — the exact `(lb, ub)` for a pair is a pure
///    function of the graph state, so repeat queries at an unchanged
///    generation are a map lookup.
/// 2. **ADO prescreen** (goal-aware queries only) — a deterministic
///    landmark sketch ([`Ado`]) answers in `O(√n)` with a relaxed
///    sandwich; when it clears the goal threshold by [`CASCADE_EPS`] the
///    comparison is decided with the exact tier's verdict.
/// 3. **Bounded bidirectional Dijkstra** (goal-aware queries only) — a
///    meeting-point search with cutoff `v − CASCADE_EPS` certifies
///    `d < v` from a real path long before either full tree settles.
/// 4. **Exact tier** — two SSSP trees (incrementally repaired across pure
///    growth) plus the wrap fold.
pub struct Splub {
    graph: PartialGraph,
    max_distance: f64,
    dij_a: Dijkstra,
    dij_b: Dijkstra,
    tag_a: Option<TreeTag>,
    tag_b: Option<TreeTag>,
    /// Generation right after the most recent successful retraction; trees
    /// settled before it must not be repaired incrementally (the retracted
    /// edge may have carried their labels).
    last_retract_gen: u64,
    /// Exact `(lb, ub)` per pair key, valid only at `memo_gen`.
    memo: BTreeMap<u64, (f64, f64)>,
    memo_gen: u64,
    /// Lazily (re)built landmark sketch for the cascade's prescreen tier.
    ado: Option<Ado>,
    /// Scratches for the bidirectional tier, separate from the exact
    /// tier's cached trees so an early-exited search never clobbers them.
    dij_bi_a: Dijkstra,
    dij_bi_b: Dijkstra,
}

/// Per-worker scratch for speculative SPLUB bound queries: the same
/// two-slot source-tagged Dijkstra cache, minus the generation tag (the
/// snapshot graph is frozen while the view is borrowed).
struct SplubScratch {
    dij_a: Dijkstra,
    dij_b: Dijkstra,
    src_a: Option<ObjectId>,
    src_b: Option<ObjectId>,
}

impl Splub {
    /// An empty SPLUB scheme over `n` objects with distances in
    /// `[0, max_distance]`.
    pub fn new(n: usize, max_distance: f64) -> Self {
        Splub {
            graph: PartialGraph::new(n),
            max_distance,
            dij_a: Dijkstra::new(n),
            dij_b: Dijkstra::new(n),
            tag_a: None,
            tag_b: None,
            last_retract_gen: 0,
            memo: BTreeMap::new(),
            memo_gen: 0,
            ado: None,
            dij_bi_a: Dijkstra::new(n),
            dij_bi_b: Dijkstra::new(n),
        }
    }

    /// Read access to the underlying known-edge graph.
    pub fn graph(&self) -> &PartialGraph {
        &self.graph
    }

    /// Settles the shortest-path tree for `src` into `dij`, preferring an
    /// incremental decrease-only repair of the tree already held when only
    /// insertions happened since it was settled.
    fn ensure_tree(
        dij: &mut Dijkstra,
        tag: &mut Option<TreeTag>,
        graph: &PartialGraph,
        src: ObjectId,
        last_retract_gen: u64,
    ) {
        let gen = graph.generation();
        let m = graph.m();
        match *tag {
            Some(t) if t.src == src && t.gen == gen => {}
            Some(t) if t.src == src && t.gen < gen && last_retract_gen <= t.gen => {
                // Pure growth since the tree settled: every generation bump
                // was an insertion, so the appended edge-list suffix is the
                // exact delta.
                debug_assert_eq!(gen - t.gen, (m - t.m) as u64);
                let new = graph.edges()[t.m..]
                    .iter()
                    .map(|&(p, w)| (p.lo(), p.hi(), w));
                let _ = dij.repair(graph, new);
                *tag = Some(TreeTag { src, gen, m });
            }
            _ => {
                let _ = dij.run(graph, src);
                *tag = Some(TreeTag { src, gen, m });
            }
        }
    }

    /// The landmark sketch for the current graph state, rebuilt lazily once
    /// the live generation outruns the sketch by more than a window of `n`
    /// generations (an `O(√n · (m + n log n))` build amortized over at
    /// least `n` updates). A stale-within-window sketch is still *sound*
    /// under growth — it only loses tightness (see the [`Ado`] docs);
    /// retractions drop the sketch outright in [`BoundScheme::retract`].
    fn ado_sketch(&mut self) -> &Ado {
        let gen = self.graph.generation();
        let window = self.graph.n() as u64;
        let rebuild = match &self.ado {
            Some(a) => gen.saturating_sub(a.generation()) > window,
            None => true,
        };
        if rebuild {
            self.ado = Some(Ado::build(&self.graph, self.max_distance, ADO_SEED));
        }
        self.ado.as_ref().expect_invariant("sketch built above")
    }
}

/// TUB/TLB from two settled shortest-path trees (Equations 2 and 3).
/// Shared verbatim by the live and snapshot paths so both produce
/// bitwise-identical bounds from identical trees.
fn wrap_bounds(
    graph: &PartialGraph,
    max_distance: f64,
    b: ObjectId,
    sp_a: DistMap<'_>,
    sp_b: DistMap<'_>,
) -> (f64, f64) {
    // TUB: shortest path a -> b (Equation 2), capped by the a-priori max.
    let ub = max_distance.min(sp_a.get(b));

    // TLB: wrap both shortest-path trees onto every known edge
    // (Equation 3). Unreachable endpoints contribute -inf and drop out.
    let mut lb = 0.0f64;
    for &(e, w) in graph.edges() {
        let (k, l) = (e.lo(), e.hi());
        let via = w - (sp_a.get(k) + sp_b.get(l));
        let via_sym = w - (sp_a.get(l) + sp_b.get(k));
        let best = via.max(via_sym);
        if best > lb {
            lb = best;
        }
    }
    if lb > ub {
        lb = ub; // float-noise guard; mathematically lb <= ub
    }
    (lb, ub)
}

impl BoundScheme for Splub {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn max_distance(&self) -> f64 {
        self.max_distance
    }

    fn known(&self, p: Pair) -> Option<f64> {
        self.graph.get(p)
    }

    fn bounds(&mut self, p: Pair) -> (f64, f64) {
        if let Some(d) = self.graph.get(p) {
            return (d, d);
        }
        let gen = self.graph.generation();
        if self.memo_gen != gen {
            self.memo.clear();
            self.memo_gen = gen;
        }
        if let Some(&(lb, ub)) = self.memo.get(&p.key()) {
            return (lb, ub);
        }
        let (a, b) = p.ends();
        Self::ensure_tree(
            &mut self.dij_a,
            &mut self.tag_a,
            &self.graph,
            a,
            self.last_retract_gen,
        );
        Self::ensure_tree(
            &mut self.dij_b,
            &mut self.tag_b,
            &self.graph,
            b,
            self.last_retract_gen,
        );
        let (lb, ub) = wrap_bounds(
            &self.graph,
            self.max_distance,
            b,
            self.dij_a.view(),
            self.dij_b.view(),
        );
        self.memo.insert(p.key(), (lb, ub));
        (lb, ub)
    }

    fn record(&mut self, p: Pair, d: f64) {
        self.graph.insert(p, d);
    }

    fn retract(&mut self, p: Pair) -> bool {
        // Removal bumps the graph generation, so the generation tags on both
        // cached Dijkstra trees (and the memo) miss; marking the retraction
        // generation also bars incremental repair across it, and the ADO
        // sketch — sound only under pure growth — is dropped outright.
        if self.graph.remove(p).is_some() {
            self.last_retract_gen = self.graph.generation();
            self.ado = None;
            true
        } else {
            false
        }
    }

    fn m(&self) -> usize {
        self.graph.m()
    }

    fn name(&self) -> &'static str {
        "SPLUB"
    }

    fn for_each_known(&self, f: &mut dyn FnMut(Pair, f64)) {
        for &(p, d) in self.graph.edges() {
            f(p, d);
        }
    }

    fn generation(&self) -> u64 {
        self.graph.generation()
    }

    // SPLUB bounds depend on the whole graph (any new edge can shorten a
    // path or improve a wrap), so the conservative default pair stamp — the
    // current generation — is also the sharp one; no override.

    fn spec(&self) -> Option<&dyn SpecBounds> {
        Some(self)
    }

    fn bounds_cacheable(&self) -> bool {
        true
    }

    fn goal_aware(&self) -> bool {
        true
    }

    fn bounds_for_goal(&mut self, p: Pair, goal: QueryGoal) -> GoalBounds {
        let Some(v) = goal.decisive_at else {
            let (lb, ub) = self.bounds(p);
            return GoalBounds::Exact { lb, ub };
        };
        if let Some(d) = self.graph.get(p) {
            return GoalBounds::Exact { lb: d, ub: d };
        }
        // Memoized exact sandwich beats every tier.
        if self.memo_gen == self.graph.generation() {
            if let Some(&(lb, ub)) = self.memo.get(&p.key()) {
                return GoalBounds::Exact { lb, ub };
            }
        }
        let (a, b) = p.ends();

        // Tier 1: ADO prescreen — O(√n) relaxed sandwich; decisive only
        // outside the guard band (see CASCADE_EPS for why that implies the
        // exact tier's verdict).
        let (lh, uh) = self.ado_sketch().estimate(a, b);
        if uh < v - CASCADE_EPS || lh > v + CASCADE_EPS {
            return GoalBounds::Decisive {
                lb: lh,
                ub: uh,
                tier: CascadeTier::Ado,
            };
        }

        // Tier 2: bounded bidirectional search. Only the *true* side is
        // reachable this way — a meeting point under the cutoff is a real
        // path certifying d < v; absence of one certifies nothing.
        let cutoff = v - CASCADE_EPS;
        if cutoff > 0.0 {
            if let Some(mu) = Dijkstra::run_bidirectional_bounded(
                &mut self.dij_bi_a,
                &mut self.dij_bi_b,
                &self.graph,
                a,
                b,
                cutoff,
            ) {
                return GoalBounds::Decisive {
                    lb: 0.0,
                    ub: self.max_distance.min(mu),
                    tier: CascadeTier::Bidi,
                };
            }
        }

        // Tier 3: the exact sandwich (memoized inside `bounds`).
        let (lb, ub) = self.bounds(p);
        GoalBounds::Exact { lb, ub }
    }
}

impl SpecBounds for Splub {
    fn spec_n(&self) -> usize {
        self.graph.n()
    }

    fn spec_max_distance(&self) -> f64 {
        self.max_distance
    }

    fn spec_generation(&self) -> u64 {
        self.graph.generation()
    }

    fn spec_pair_stamp(&self, _p: Pair) -> u64 {
        self.graph.generation()
    }

    fn spec_known(&self, p: Pair) -> Option<f64> {
        self.graph.get(p)
    }

    fn new_scratch(&self) -> SpecScratch {
        SpecScratch::with(SplubScratch {
            dij_a: Dijkstra::new(self.graph.n()),
            dij_b: Dijkstra::new(self.graph.n()),
            src_a: None,
            src_b: None,
        })
    }

    fn spec_bounds(&self, p: Pair, scratch: &mut SpecScratch) -> (f64, f64) {
        if let Some(d) = self.graph.get(p) {
            return (d, d);
        }
        if scratch.get_mut::<SplubScratch>().is_none() {
            *scratch = self.new_scratch();
        }
        let s = scratch
            .get_mut::<SplubScratch>()
            .expect_invariant("scratch installed above");
        let (a, b) = p.ends();
        if s.src_a != Some(a) {
            s.dij_a.run(&self.graph, a);
            s.src_a = Some(a);
        }
        if s.src_b != Some(b) {
            s.dij_b.run(&self.graph, b);
            s.src_b = Some(b);
        }
        wrap_bounds(
            &self.graph,
            self.max_distance,
            b,
            s.dij_a.view(),
            s.dij_b.view(),
        )
    }

    fn spec_label(&self) -> &'static str {
        // Must match `BoundScheme::name` for trace byte-identity (I8).
        "SPLUB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prox_core::TinyRng;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn single_triangle_matches_tri_scheme() {
        // Same fixture as the paper's Example 2.1 discussion.
        let mut s = Splub::new(7, 1.0);
        s.record(p(1, 3), 0.8);
        s.record(p(3, 4), 0.1);
        let (lb, ub) = s.bounds(p(1, 4));
        assert!((lb - 0.7).abs() < 1e-12);
        assert!((ub - 0.9).abs() < 1e-12);
    }

    #[test]
    fn longer_paths_tighten_ub() {
        // Chain 0 -0.2- 1 -0.2- 2 -0.2- 3: ub(0,3) = 0.6 (no triangle exists,
        // so Tri Scheme would say 1.0 — SPLUB sees the full path).
        let mut s = Splub::new(4, 1.0);
        s.record(p(0, 1), 0.2);
        s.record(p(1, 2), 0.2);
        s.record(p(2, 3), 0.2);
        let (lb, ub) = s.bounds(p(0, 3));
        assert!((ub - 0.6).abs() < 1e-12, "ub {ub}");
        assert_eq!(lb, 0.0);
    }

    #[test]
    fn wrap_lower_bound_through_path() {
        // Long edge (2,3)=0.9; sp(0,2)=0.1 via direct, sp(1,3)=0.1.
        // lb(0,1) >= 0.9 - 0.1 - 0.1 = 0.7. Tri Scheme sees no triangle on
        // (0,1) and would return 0 — the paper's motivating gap.
        let mut s = Splub::new(4, 1.0);
        s.record(p(0, 2), 0.1);
        s.record(p(2, 3), 0.9);
        s.record(p(1, 3), 0.1);
        let (lb, ub) = s.bounds(p(0, 1));
        assert!((lb - 0.7).abs() < 1e-12, "lb {lb}");
        assert!((ub - 1.0).abs() < 1e-12, "path ub = 1.1 capped, got {ub}");
    }

    #[test]
    fn disconnected_endpoints_trivial_bounds() {
        let mut s = Splub::new(5, 1.0);
        s.record(p(0, 1), 0.4);
        assert_eq!(s.bounds(p(3, 4)), (0.0, 1.0));
    }

    #[test]
    fn known_edge_is_exact() {
        let mut s = Splub::new(3, 1.0);
        s.record(p(0, 2), 0.6);
        assert_eq!(s.bounds(p(0, 2)), (0.6, 0.6));
        assert_eq!(s.m(), 1);
    }

    #[test]
    fn retract_invalidates_cached_shortest_paths() {
        // Chain 0 -0.2- 1 -0.2- 2 -0.2- 3 gives ub(0,3)=0.6; the same query
        // again after retracting the middle edge must not reuse the stale
        // Dijkstra trees (they are keyed by graph generation).
        let mut s = Splub::new(4, 1.0);
        s.record(p(0, 1), 0.2);
        s.record(p(1, 2), 0.2);
        s.record(p(2, 3), 0.2);
        assert!((s.bounds(p(0, 3)).1 - 0.6).abs() < 1e-12);
        assert!(s.retract(p(1, 2)));
        assert_eq!(s.known(p(1, 2)), None);
        assert_eq!(s.bounds(p(0, 3)), (0.0, 1.0), "path broken, trees rebuilt");
        // Repair with a different value; the new path is used.
        s.record(p(1, 2), 0.1);
        assert!((s.bounds(p(0, 3)).1 - 0.5).abs() < 1e-12);
        assert!(!s.retract(p(0, 3)), "never-recorded pair refuses");
    }

    #[test]
    fn lb_never_negative() {
        let mut s = Splub::new(3, 1.0);
        s.record(p(0, 1), 0.1);
        s.record(p(1, 2), 0.5);
        // Wrap residues are negative here; lb must clamp at 0.
        let (lb, _) = s.bounds(p(0, 2));
        assert!(lb >= 0.0);
        assert!((lb - 0.4).abs() < 1e-12, "|0.5-0.1| via wrap, got {lb}");
    }

    // ---- cascade / incremental-maintenance tests ------------------------

    /// Random points in the unit square, scaled so distances fit `[0, 1]`
    /// (the cascade's relaxations, like I1, need genuinely metric weights).
    fn coords(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = TinyRng::new(seed);
        (0..n).map(|_| (rng.unit_f64(), rng.unit_f64())).collect()
    }

    fn euclid(c: &[(f64, f64)], q: Pair) -> f64 {
        let (ax, ay) = c[q.lo() as usize];
        let (bx, by) = c[q.hi() as usize];
        (((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()) / std::f64::consts::SQRT_2
    }

    /// A deterministic metric record schedule: `m` distinct pairs with
    /// Euclidean distances.
    fn schedule(n: usize, m: usize, seed: u64) -> Vec<(Pair, f64)> {
        let c = coords(n, seed);
        let mut rng = TinyRng::new(seed ^ 0xABCD);
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        while out.len() < m {
            let a = rng.below(n) as u32;
            let b = rng.below(n) as u32;
            if a != b && seen.insert(Pair::new(a, b)) {
                out.push((Pair::new(a, b), euclid(&c, Pair::new(a, b))));
            }
        }
        out
    }

    #[test]
    fn incremental_trees_match_fresh_scheme_bitwise() {
        // Interleave records and queries; an instance that repairs its
        // trees incrementally must stay bitwise identical to a fresh
        // instance rebuilt from scratch at every step.
        for seed in 0..6u64 {
            let n = 24;
            let sched = schedule(n, 60, 0x1AC + seed);
            let mut inc = Splub::new(n, 1.0);
            let mut rng = TinyRng::new(seed ^ 0xF00);
            for (i, &(e, w)) in sched.iter().enumerate() {
                inc.record(e, w);
                for _ in 0..3 {
                    let a = rng.below(n) as u32;
                    let b = rng.below(n) as u32;
                    if a == b {
                        continue;
                    }
                    let q = Pair::new(a, b);
                    let (li, ui) = inc.bounds(q);
                    let mut fresh = Splub::new(n, 1.0);
                    for &(e2, w2) in &sched[..=i] {
                        fresh.record(e2, w2);
                    }
                    let (lf, uf) = fresh.bounds(q);
                    assert_eq!(li.to_bits(), lf.to_bits(), "seed {seed} step {i} {q:?}");
                    assert_eq!(ui.to_bits(), uf.to_bits(), "seed {seed} step {i} {q:?}");
                }
            }
        }
    }

    #[test]
    fn memo_serves_repeats_and_invalidates_on_record() {
        let mut s = Splub::new(4, 1.0);
        s.record(p(0, 1), 0.2);
        s.record(p(1, 2), 0.2);
        let first = s.bounds(p(0, 2));
        assert_eq!(s.bounds(p(0, 2)), first, "repeat query is memo-served");
        // A record changes the graph; the memo must not serve stale bounds.
        s.record(p(2, 3), 0.2);
        s.record(p(0, 3), 0.1);
        let (_, ub) = s.bounds(p(0, 2));
        assert!((ub - 0.3).abs() < 1e-12, "0-3-2 path 0.3, got {ub}");
    }

    #[test]
    fn goal_without_threshold_is_exact() {
        let mut s = Splub::new(4, 1.0);
        s.record(p(0, 1), 0.2);
        s.record(p(1, 2), 0.3);
        let exact = s.bounds(p(0, 2));
        match s.bounds_for_goal(p(0, 2), QueryGoal::exact()) {
            GoalBounds::Exact { lb, ub } => assert_eq!((lb, ub), exact),
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn cascade_verdicts_match_exact_tier() {
        // For every pair and a sweep of thresholds: whenever the cascade
        // claims Decisive, deciding the comparison from its relaxed
        // sandwich must agree with the exact sandwich for both the strict
        // and non-strict probe under DECISION_EPS margins — and the
        // relaxation must actually relax.
        use crate::resolver::DECISION_EPS;
        for seed in 0..4u64 {
            let n = 20;
            let mut s = Splub::new(n, 1.0);
            for (e, w) in schedule(n, 50, 0xCA5 + seed) {
                s.record(e, w);
            }
            for q in Pair::all(n) {
                if s.known(q).is_some() {
                    continue;
                }
                let (le, ue) = {
                    let mut fresh = Splub::new(n, 1.0);
                    for &(e, w) in s.graph().edges() {
                        fresh.record(e, w);
                    }
                    fresh.bounds(q)
                };
                for v in [0.05, 0.15, 0.3, 0.5, 0.7, 0.9, ue, le] {
                    if let GoalBounds::Decisive { lb, ub, .. } =
                        s.bounds_for_goal(q, QueryGoal::threshold(v))
                    {
                        assert!(lb <= le + 1e-12 && ub >= ue - 1e-12, "not a relaxation");
                        // try_less_value verdicts.
                        let relaxed = if ub < v - DECISION_EPS {
                            Some(true)
                        } else if lb >= v + DECISION_EPS {
                            Some(false)
                        } else {
                            None
                        };
                        let exact = if ue < v - DECISION_EPS {
                            Some(true)
                        } else if le >= v + DECISION_EPS {
                            Some(false)
                        } else {
                            None
                        };
                        assert!(relaxed.is_some(), "Decisive must decide {q:?} v={v}");
                        assert_eq!(relaxed, exact, "seed {seed} {q:?} v={v}");
                        // try_leq_value verdicts (false side is strict >).
                        let relaxed_leq = if ub <= v - DECISION_EPS {
                            Some(true)
                        } else if lb > v + DECISION_EPS {
                            Some(false)
                        } else {
                            None
                        };
                        let exact_leq = if ue <= v - DECISION_EPS {
                            Some(true)
                        } else if le > v + DECISION_EPS {
                            Some(false)
                        } else {
                            None
                        };
                        assert_eq!(relaxed_leq, exact_leq, "seed {seed} {q:?} v={v} (leq)");
                    }
                }
            }
        }
    }

    #[test]
    fn cascade_survives_retraction() {
        let n = 16;
        let mut s = Splub::new(n, 1.0);
        let sched = schedule(n, 40, 0xDEAD);
        for &(e, w) in &sched {
            s.record(e, w);
        }
        // Warm the sketch, then poison and retract an edge.
        let _ = s.bounds_for_goal(p(0, 1), QueryGoal::threshold(0.5));
        let victim = sched[10].0;
        assert!(s.retract(victim));
        s.record(victim, sched[10].1);
        // Verdicts after the retract+re-record cycle still match a fresh
        // instance's exact sandwich.
        let mut fresh = Splub::new(n, 1.0);
        for &(e, w) in s.graph().edges() {
            fresh.record(e, w);
        }
        for q in Pair::all(n).step_by(7) {
            if s.known(q).is_some() {
                continue;
            }
            let (le, ue) = fresh.bounds(q);
            let got = s.bounds_for_goal(q, QueryGoal::threshold(0.4));
            let (lb, ub) = got.bounds();
            assert!(
                lb <= le + 1e-12 && ub >= ue - 1e-12,
                "{q:?}: unsound after retract"
            );
        }
    }
}
