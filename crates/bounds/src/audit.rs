//! Consistency auditing for *untrusted* oracles (value-corruption defence).
//!
//! The fault layer in `prox_core::fault` models oracles that **lie**: a
//! [`prox_core::CorruptionInjector`] deterministically perturbs a fraction
//! of returned distances. This module is the counter-measure. It rests on
//! one observation the whole workspace is built around: every accepted
//! distance lives inside a *certified sandwich* — the `[TLB, TUB]` interval
//! the bound scheme derives from previously accepted values via the
//! triangle inequality. A fresh value outside that sandwich is a **proven
//! inconsistency**: no metric can simultaneously satisfy the recorded
//! distances and the new one, so at least one oracle answer was wrong. The
//! witness is the triangle (or path) that produced the violated bound.
//!
//! Two defence levels, selected by [`AuditPolicy`]:
//!
//! * **Detection mode** (`vote_k == 1`). Every fresh value is checked
//!   against its sandwich. A violation is counted, traced
//!   (`TraceEvent::Corruption`), the pair quarantined, and the value
//!   re-queried under a trusted 2-of-n vote. If the *trusted* value also
//!   violates the sandwich, an earlier silently-accepted value must have
//!   been the lie, and the resolver sweeps every recorded edge,
//!   re-verifying each by vote and retracting the poisoned ones
//!   ([`crate::BoundScheme::retract`]). Detection mode is cheap (zero
//!   extra calls until a lie is caught) but *incomplete*: a lie inside the
//!   sandwich passes.
//! * **Voting mode** (`vote_k >= 2`). Every fresh resolution queries
//!   independent replicas until `vote_k` of them agree bit-for-bit; the
//!   agreed value is accepted, disagreeing replicas are counted as
//!   detections. Because the corruption schedule is a pure function of
//!   `(pair, replica)` and changes the bits of the value whenever it
//!   fires, a corrupted replica can never reach quorum against clean
//!   replicas, so voting restores *exactness*: invariant **I9** pins the
//!   audited run's outputs byte-identical to a clean run's.
//!
//! Re-queries are billed honestly — each replica call goes through the
//! same counted, budgeted oracle path — and accumulated in
//! [`CorruptionStats::requeries`] so `billed(corrupt) == billed(clean) +
//! requeries` can be asserted exactly.

use std::collections::BTreeMap;

use prox_core::invariant;
use prox_core::Pair;

/// Upper bound on replicas queried for one pair in a single vote. Reaching
/// it means the oracle disagrees with itself faster than any plausible
/// corruption rate allows; continuing would burn budget forever.
pub const VOTE_CAP: u32 = 256;

/// How the resolver audits accepted values. See the module docs for the
/// two modes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AuditPolicy {
    /// Bit-exact agreements required to accept a value (`1` = accept the
    /// first answer, audit it against the bound sandwich).
    pub vote_k: u32,
    /// Nominal replica pool. Purely descriptive for first-to-k voting
    /// (the vote escalates past `n` when corruption clusters), but kept
    /// for reporting and CLI symmetry; must satisfy `n >= k`.
    pub vote_n: u32,
}

impl AuditPolicy {
    /// Sandwich auditing only: accept first answers, prove lies post-hoc.
    pub fn detect_only() -> Self {
        AuditPolicy {
            vote_k: 1,
            vote_n: 1,
        }
    }

    /// `k`-of-`n` voting on every fresh resolution.
    pub fn vote(k: u32, n: u32) -> Self {
        invariant!(
            k >= 1 && n >= k,
            "vote policy requires n >= k >= 1 (got k={k}, n={n})"
        );
        AuditPolicy {
            vote_k: k,
            vote_n: n,
        }
    }

    /// True when every fresh resolution is vote-confirmed.
    pub fn always_votes(&self) -> bool {
        self.vote_k >= 2
    }
}

/// Counters for the audit machinery, reconciled exactly by the I9 tests:
/// under voting, `detected` equals the number of injected-and-observed
/// corruptions, and `requeries` equals the billed-call overhead versus a
/// clean run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CorruptionStats {
    /// Values proven wrong — sandwich violations plus vote losers.
    pub detected: u64,
    /// Trusted replacements recorded after a detection.
    pub repaired: u64,
    /// Previously *accepted* values withdrawn from the bound scheme during
    /// a poisoned-state sweep.
    pub retracted: u64,
    /// Oracle calls beyond the one a clean, unaudited run would have paid
    /// for the same resolutions.
    pub requeries: u64,
}

/// Per-resolver audit state: the policy, the counters, and the quarantine
/// cursor — the next fresh replica index per pair, so re-queries after a
/// detection never re-read the replica that lied.
#[derive(Clone, Debug)]
pub struct AuditState {
    pub(crate) policy: AuditPolicy,
    pub(crate) stats: CorruptionStats,
    pub(crate) next_replica: BTreeMap<u64, u32>,
}

impl AuditState {
    pub(crate) fn new(policy: AuditPolicy) -> Self {
        AuditState {
            policy,
            stats: CorruptionStats::default(),
            next_replica: BTreeMap::new(),
        }
    }

    /// First unqueried replica index for `p`.
    pub(crate) fn cursor(&self, p: Pair) -> u32 {
        self.next_replica.get(&p.key()).copied().unwrap_or(0)
    }

    /// Advances the cursor after a vote consumed replicas `[from, to)`.
    pub(crate) fn advance(&mut self, p: Pair, to: u32) {
        self.next_replica.insert(p.key(), to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_constructors() {
        assert_eq!(AuditPolicy::detect_only(), AuditPolicy::vote(1, 1));
        assert!(!AuditPolicy::detect_only().always_votes());
        assert!(AuditPolicy::vote(2, 3).always_votes());
        assert_eq!(AuditPolicy::vote(3, 3).vote_n, 3);
    }

    #[test]
    #[should_panic(expected = "n >= k >= 1")]
    fn zero_k_is_rejected() {
        let _ = AuditPolicy::vote(0, 3);
    }

    #[test]
    #[should_panic(expected = "n >= k >= 1")]
    fn n_below_k_is_rejected() {
        let _ = AuditPolicy::vote(3, 2);
    }

    #[test]
    fn cursor_tracks_quarantine() {
        let mut a = AuditState::new(AuditPolicy::detect_only());
        let p = Pair::new(0, 1);
        assert_eq!(a.cursor(p), 0);
        a.advance(p, 3);
        assert_eq!(a.cursor(p), 3);
        assert_eq!(a.cursor(Pair::new(0, 2)), 0, "per-pair cursors");
    }
}
